// Schedule independence of the fused tile-parallel decompress pipeline
// (ISSUE PR10): the cache-resident scatter + inverse-bitshuffle +
// sign-magnitude decode pass must reconstruct byte-identical fields to the
// classic staged graph for EVERY worker count, SIMD tier, dtype and rank —
// and the 3-D z-carry chunked inverse scans must be exact for every chunk
// split (i64 adds are associative mod 2^64, so the partition never shows).
// Also pins the per-strip telemetry spans, legacy-stream routing, the
// device-model mirror (sim_fused_decode) and the split-plane halo windows,
// plus end-to-end identity through fz::Reader chunk fetches and fz::Service
// decompress jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/bitshuffle.hpp"
#include "core/codec.hpp"
#include "core/chunked.hpp"
#include "core/encoder.hpp"
#include "core/kernels_sim.hpp"
#include "core/kernels_simd.hpp"
#include "core/lorenzo.hpp"
#include "datasets/field.hpp"
#include "reader/reader.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"

// The cudasim device model drives thousands of simulated threads through
// very deep cooperative call chains; TSan's fixed-size stack depot cannot
// represent them (sanitizer_stackdepot CHECK failure, not a data race), so
// the sim-mirror tests skip under TSan.  The host-side concurrency tests —
// the reason this binary is in the tsan preset — run everywhere.
#if defined(__SANITIZE_THREAD__)
#define FZ_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FZ_TSAN_BUILD 1
#endif
#endif
#if defined(FZ_TSAN_BUILD)
#define FZ_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "cudasim fiber depth overflows TSan's stack depot"
#else
#define FZ_SKIP_UNDER_TSAN() (void)0
#endif

namespace fz {
namespace {

SimdDispatch dispatch_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::AVX2:
      return SimdDispatch::AVX2;
    case SimdLevel::SSE2:
      return SimdDispatch::SSE2;
    default:
      return SimdDispatch::Scalar;
  }
}

std::vector<SimdLevel> levels_under_test() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_supported() >= SimdLevel::SSE2) levels.push_back(SimdLevel::SSE2);
  if (simd_supported() >= SimdLevel::AVX2) levels.push_back(SimdLevel::AVX2);
  return levels;
}

// Multi-tile shapes for every rank (same set the compress-side sweep in
// test_fused_parallel.cpp uses); 2049 exercises the padded final tile.
const Dims kDims[] = {Dims{5000},       Dims{2049},       Dims{64, 256},
                      Dims{96, 40},     Dims{24, 20, 20}, Dims{32, 24, 24}};

template <typename T>
std::vector<T> field(Dims dims, u64 seed) {
  Rng rng(seed);
  const size_t n = dims.count();
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % std::max<size_t>(dims.x, 1));
    v[i] = static_cast<T>(40.0 * std::sin(x * 0.11) +
                          10.0 * std::cos(static_cast<double>(i) * 0.003) +
                          rng.uniform(-0.5, 0.5));
  }
  return v;
}

template <typename T>
void expect_bits_equal(std::span<const T> a, std::span<const T> b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    if constexpr (sizeof(T) == 4) {
      ASSERT_EQ(std::bit_cast<u32>(a[i]), std::bit_cast<u32>(b[i]))
          << what << " diverges at element " << i;
    } else {
      ASSERT_EQ(std::bit_cast<u64>(a[i]), std::bit_cast<u64>(b[i]))
          << what << " diverges at element " << i;
    }
  }
}

// ---- fused vs classic graph: byte identity across every schedule ----------

template <typename T>
void sweep_dtype(SimdLevel level, Dims dims) {
  const std::vector<T> data = field<T>(dims, dims.count());
  FzParams cp;
  cp.eb = ErrorBound::absolute(1e-3);
  cp.simd = dispatch_for(level);
  cp.fused_workers = 1;
  Codec compressor(cp);
  const FzCompressed c =
      compressor.compress(std::span<const T>{data}, dims);

  // Reference: the classic staged graph (scatter-unshuffle / inverse-quant),
  // single worker.
  FzParams ref = cp;
  ref.fused_decompress = false;
  Codec ref_codec(ref);
  std::vector<T> want(data.size());
  ASSERT_EQ(ref_codec.decompress_into(c.bytes, want), dims);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    FzParams dp = cp;
    dp.fused_workers = workers;
    dp.fused_decompress = true;
    Codec codec(dp);
    std::vector<T> got(data.size(), T(-1));
    ASSERT_EQ(codec.decompress_into(c.bytes, got), dims);
    expect_bits_equal<T>(got, want,
                         dims.to_string() + " level " +
                             std::to_string(static_cast<int>(level)) +
                             " workers " + std::to_string(workers));
  }
}

TEST(FusedDecompress, MatchesUnfusedForEveryScheduleDtypeAndRank) {
  for (const SimdLevel level : levels_under_test())
    for (const Dims dims : kDims) {
      sweep_dtype<f32>(level, dims);
      sweep_dtype<f64>(level, dims);
    }
}

TEST(FusedDecompress, LegacyV1StreamsRouteToTheClassicGraph) {
  // The fused pass decodes V2 sign-magnitude tiles only; a V1 stream must
  // transparently ride the classic graph even with the knob on.
  const Dims dims{60, 50};
  const std::vector<f32> data = field<f32>(dims, 7);
  FzParams v1;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  v1.eb = ErrorBound::absolute(1e-2);
  Codec compressor(v1);
  const FzCompressed c = compressor.compress(std::span<const f32>{data}, dims);

  FzParams on;   // defaults: fused_decompress = true
  FzParams off;
  off.fused_decompress = false;
  Codec codec_on(on), codec_off(off);
  std::vector<f32> a(data.size()), b(data.size());
  ASSERT_EQ(codec_on.decompress_into(c.bytes, a), dims);
  ASSERT_EQ(codec_off.decompress_into(c.bytes, b), dims);
  expect_bits_equal<f32>(a, b, "v1 stream");
}

// ---- 3-D z-carry chunked scans --------------------------------------------

TEST(FusedDecompress, ZScanChunkedIsExactForEveryChunkCount) {
  // Flat 3-D volumes (fewer y-rows than workers) take the plane-granular
  // chunked z-scan; every worker count must reproduce the serial bytes
  // exactly — integer adds commute under any associativity.
  for (const Dims dims : {Dims{512, 1, 96}, Dims{64, 2, 128}, Dims{33, 1, 50},
                          Dims{128, 3, 40}}) {
    Rng rng(dims.count());
    std::vector<i64> deltas(dims.count());
    for (auto& v : deltas)
      v = static_cast<i64>(rng.uniform(-1e6, 1e6));

    std::vector<i64> want(deltas);
    lorenzo_inverse(want, dims, want, /*workers=*/1);
    for (size_t workers : {size_t{0}, size_t{2}, size_t{3}, size_t{8}}) {
      std::vector<i64> got(deltas);
      lorenzo_inverse(got, dims, got, workers);
      EXPECT_EQ(got, want) << dims.to_string() << " workers " << workers;
    }
  }
}

TEST(FusedDecompress, FlatVolumeStreamsDecodeIdenticallyAcrossWorkers) {
  // End-to-end: the chunked z-scan inside decompress must never show in
  // the restored bytes.
  const Dims dims{1024, 1, 48};
  const std::vector<f32> data = field<f32>(dims, 13);
  Codec compressor;
  const FzCompressed c = compressor.compress(std::span<const f32>{data}, dims);

  FzParams one;
  one.fused_workers = 1;
  Codec ref(one);
  std::vector<f32> want(data.size());
  ref.decompress_into(c.bytes, want);
  for (size_t workers : {size_t{0}, size_t{2}, size_t{3}, size_t{8}}) {
    FzParams dp;
    dp.fused_workers = workers;
    Codec codec(dp);
    std::vector<f32> got(data.size());
    codec.decompress_into(c.bytes, got);
    expect_bits_equal<f32>(got, want, "flat volume workers " +
                                          std::to_string(workers));
  }
}

// ---- telemetry ------------------------------------------------------------

TEST(FusedDecompress, EmitsOneStripSpanPerPlannedStrip) {
  const Dims dims{64, 256};
  const std::vector<f32> data = field<f32>(dims, 3);
  Codec compressor;
  const FzCompressed c = compressor.compress(std::span<const f32>{data}, dims);

  telemetry::Sink sink;
  FzParams dp;
  dp.fused_workers = 8;
  dp.telemetry = &sink;
  Codec codec(dp);
  std::vector<f32> out(data.size());
  codec.decompress_into(c.bytes, out);

  const FusedParallelPlan plan = fused_parallel_plan(dims, 8);
  ASSERT_GT(plan.strips, 1u);
  size_t strip_spans = 0;
  bool saw_fused_decode_stage = false;
  for (const auto& ev : sink.snapshot()) {
    const std::string_view name{ev.name};
    if (name == "fused-decode") saw_fused_decode_stage = true;
    if (name != "fused-decode-strip") continue;
    ++strip_spans;
    bool has_strip = false, has_tiles = false, has_bytes = false;
    for (u16 i = 0; i < ev.n_args; ++i) {
      const std::string_view key{ev.args[i].key};
      if (key == "strip") has_strip = true;
      if (key == "tiles") has_tiles = true;
      if (key == "bytes") has_bytes = true;
    }
    EXPECT_TRUE(has_strip && has_tiles && has_bytes);
  }
  EXPECT_TRUE(saw_fused_decode_stage);
  EXPECT_EQ(strip_spans, plan.strips);
}

// ---- device-model mirror ---------------------------------------------------

std::vector<u32> sparse_code_words(size_t count, u64 seed) {
  // Sign-magnitude u16 codes with long zero runs, packed two per word —
  // the shape real residual streams take.
  Rng rng(seed);
  std::vector<u32> words(round_up(count, kCodesPerTile) / 2, 0);
  std::span<u16> codes{reinterpret_cast<u16*>(words.data()),
                       words.size() * 2};
  for (size_t i = 0; i < count; ++i)
    if (rng.uniform(0.0, 1.0) < 0.2)
      codes[i] = static_cast<u16>(
          static_cast<u64>(std::llround(rng.uniform(0.0, 500.0))) * 2 +
          (rng.uniform(0.0, 1.0) < 0.5 ? 1 : 0));
  return words;
}

TEST(SimFusedDecode, MatchesScatterUnshuffleDecodeExactly) {
  FZ_SKIP_UNDER_TSAN();
  // The single-launch device kernel (scatter + ballot transpose + decode)
  // must emit the same i64 residuals as the staged host decode.  The odd
  // count exercises the tail guard on the final tile.
  const size_t count = 5 * kCodesPerTile - 371;
  const auto words = sparse_code_words(count, 17);
  std::vector<u32> shuffled(words.size());
  bitshuffle_tiles(words, shuffled);
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  compact_blocks(shuffled, byte_flags, blocks);

  // Host reference: staged scatter + unshuffle + scalar decode.
  std::vector<u32> restored(words.size());
  decode_blocks(bit_flags, blocks, restored);
  std::vector<u32> codes(words.size());
  bitunshuffle_tiles(restored, codes);
  std::span<const u16> u16s{reinterpret_cast<const u16*>(codes.data()),
                            codes.size() * 2};
  std::vector<i64> want(count);
  for (size_t i = 0; i < count; ++i) want[i] = sign_magnitude_decode(u16s[i]);

  std::vector<i64> got(count, -12345);
  const auto cost = sim_fused_decode(bit_flags, blocks, got);
  EXPECT_EQ(got, want);
  // One decode launch after the offset scan; the scattered words and the
  // u16 code array never touch global memory, so the only kernel writes
  // beyond the scan's scratch are the i64 residuals themselves.
  EXPECT_GE(cost.global_bytes_written, count * sizeof(i64));
}

TEST(SimFusedDecode, UnpaddedSharedTileStaysCorrect) {
  FZ_SKIP_UNDER_TSAN();
  const size_t count = 2 * kCodesPerTile;
  const auto words = sparse_code_words(count, 23);
  std::vector<u32> shuffled(words.size());
  bitshuffle_tiles(words, shuffled);
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  compact_blocks(shuffled, byte_flags, blocks);

  std::vector<i64> padded(count), unpadded(count);
  const auto p = sim_fused_decode(bit_flags, blocks, padded, true);
  const auto u = sim_fused_decode(bit_flags, blocks, unpadded, false);
  EXPECT_EQ(padded, unpadded);
  EXPECT_GT(u.shared_transactions, p.shared_transactions);
}

// ---- split-plane halo windows (encode-side strips kernel) ------------------

TEST(SimFusedQuant, SplitPlaneHaloKeepsCooperativeStagingWithinBudget) {
  FZ_SKIP_UNDER_TSAN();
  // {200, 120, 4}: the full plane halo (24201 i64) blows the 200 KB shared
  // budget, but the two bounded windows (near rows + z-plane band) fit —
  // the kernel must stay on the cooperative strips path (the CostSheet
  // name proves it did not fall back) and still match the host stage
  // byte for byte.
  Field f;
  f.dims = Dims{200, 120, 4};
  f.data.resize(f.dims.count());
  Rng rng(29);
  for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));
  const double abs_eb = 0.01;

  const size_t words = round_up(f.count(), kCodesPerTile) / 2;
  const size_t blocks = words / kBlockWords;
  std::vector<u32> host_shuffled(words), sim_shuffled(words);
  std::vector<u8> host_byte(blocks), host_bit(blocks / 8);
  std::vector<i64> row_scratch(fused_row_scratch_elems(f.dims));
  std::vector<i64> plane_scratch(fused_plane_scratch_elems(f.dims));
  const FusedTileResult host = fused_quant_shuffle_mark(
      f.values(), f.dims, abs_eb, /*f32_fast=*/false, host_shuffled,
      host_byte, host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);

  std::vector<u8> sim_byte, sim_bit;
  std::vector<i64> anchor(1, -1);
  const auto cost = sim_fused_quant_shuffle_mark_strips(
      f.values(), f.dims, abs_eb, sim_shuffled, sim_byte, sim_bit, anchor);
  EXPECT_EQ(cost.name, "fused-quant-shuffle-mark-strips");
  EXPECT_EQ(sim_shuffled, host_shuffled);
  EXPECT_EQ(sim_byte, host_byte);
  EXPECT_EQ(sim_bit, host_bit);
  EXPECT_EQ(anchor[0], host.anchor);
}

TEST(SimFusedQuant, FallsBackOnlyWhenSplitWindowsBlowTheBudgetToo) {
  FZ_SKIP_UNDER_TSAN();
  // nx so large that even one bounded window exceeds half the budget:
  // the kernel must route to the single-pass fallback (name check) and
  // still match the host stage.
  Field f;
  f.dims = Dims{12000, 3, 2};
  f.data.resize(f.dims.count());
  Rng rng(31);
  for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));

  const size_t words = round_up(f.count(), kCodesPerTile) / 2;
  const size_t blocks = words / kBlockWords;
  std::vector<u32> host_shuffled(words), sim_shuffled(words);
  std::vector<u8> host_byte(blocks), host_bit(blocks / 8);
  std::vector<i64> row_scratch(fused_row_scratch_elems(f.dims));
  std::vector<i64> plane_scratch(fused_plane_scratch_elems(f.dims));
  const FusedTileResult host = fused_quant_shuffle_mark(
      f.values(), f.dims, 0.01, /*f32_fast=*/false, host_shuffled, host_byte,
      host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);

  std::vector<u8> sim_byte, sim_bit;
  std::vector<i64> anchor(1, -1);
  const auto cost = sim_fused_quant_shuffle_mark_strips(
      f.values(), f.dims, 0.01, sim_shuffled, sim_byte, sim_bit, anchor);
  EXPECT_EQ(cost.name, "fused-quant-shuffle-mark");
  EXPECT_EQ(sim_shuffled, host_shuffled);
  EXPECT_EQ(sim_byte, host_byte);
  EXPECT_EQ(anchor[0], host.anchor);
}

// ---- end-to-end surfaces ---------------------------------------------------

TEST(FusedDecompress, ReaderChunkFetchesMatchFullDecode) {
  // Reader decodes ride the fused graph (one strip per fetch); every slice
  // must still match decompressing the whole stream and copying out.
  const Dims dims{48, 40, 24};
  const std::vector<f32> data = field<f32>(dims, 41);
  ChunkedParams cp;
  cp.num_chunks = 5;
  const ChunkedCompressed c = fz_compress_chunked(data, dims, cp);

  Codec codec;
  std::vector<f32> full(data.size());
  // Whole-container decode as the reference.
  const FzDecompressed ref = fz_decompress_chunked(c.bytes);
  std::copy(ref.data.begin(), ref.data.end(), full.begin());

  ReaderOptions opts;
  opts.workers = 3;
  Reader reader(c.bytes, opts);
  std::vector<f32> flat(data.size());
  reader.read_flat(0, flat);
  expect_bits_equal<f32>(flat, full, "reader full read_flat");

  const Slice s{.x = 5, .y = 7, .z = 3, .nx = 30, .ny = 20, .nz = 15};
  const std::vector<f32> got = reader.read(s);
  std::vector<f32> want(s.count());
  for (size_t z = 0; z < s.nz; ++z)
    for (size_t y = 0; y < s.ny; ++y)
      for (size_t x = 0; x < s.nx; ++x)
        want[(z * s.ny + y) * s.nx + x] =
            full[((s.z + z) * dims.y + (s.y + y)) * dims.x + (s.x + x)];
  expect_bits_equal<f32>(got, want, "reader slice");
}

TEST(FusedDecompress, ServiceDecompressJobsMatchDirectCodec) {
  const Dims dims{96, 40};
  const std::vector<f32> data = field<f32>(dims, 43);
  Codec compressor;
  const FzCompressed c = compressor.compress(std::span<const f32>{data}, dims);
  std::vector<f32> want(data.size());
  compressor.decompress_into(c.bytes, want);

  Service::Options opts;
  opts.workers = 2;
  Service service(opts);
  Request req;
  req.kind = JobKind::Decompress;
  req.payload = c.bytes;
  Response resp;
  ASSERT_TRUE(service.submit(req, resp).ok()) << resp.status.message();
  ASSERT_EQ(resp.dims, dims);
  ASSERT_EQ(resp.payload.size(), want.size() * sizeof(f32));
  std::span<const f32> got{reinterpret_cast<const f32*>(resp.payload.data()),
                           want.size()};
  expect_bits_equal<f32>(got, std::span<const f32>{want}, "service job");
}

TEST(FusedDecompress, ConcurrentCodecsSharingOneSinkStayIndependent) {
  // TSan-facing stress: one Codec per thread (the threading contract), all
  // recording strip spans into ONE shared sink while decompressing the
  // same stream.  Every thread must reproduce the reference bytes.
  const Dims dims{64, 256};
  const std::vector<f32> data = field<f32>(dims, 47);
  Codec compressor;
  const FzCompressed c = compressor.compress(std::span<const f32>{data}, dims);
  std::vector<f32> want(data.size());
  compressor.decompress_into(c.bytes, want);

  telemetry::Sink sink;
  constexpr size_t kThreads = 4;
  std::vector<std::vector<f32>> outs(kThreads,
                                     std::vector<f32>(data.size()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      FzParams dp;
      dp.fused_workers = 2;
      dp.telemetry = &sink;
      Codec codec(dp);
      for (int round = 0; round < 8; ++round)
        codec.decompress_into(c.bytes, outs[t]);
    });
  for (auto& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t)
    expect_bits_equal<f32>(outs[t], std::span<const f32>{want},
                           "thread " + std::to_string(t));
  size_t strip_spans = 0;
  for (const auto& ev : sink.snapshot())
    if (std::string_view{ev.name} == "fused-decode-strip") ++strip_spans;
  EXPECT_GT(strip_spans, 0u);
}

}  // namespace
}  // namespace fz
