#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "core/pipeline.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

namespace fz {
namespace {

Field smooth_field(Dims dims, u64 seed) {
  Field f;
  f.dataset = "synthetic";
  f.name = "smooth";
  f.dims = dims;
  f.data.resize(dims.count());
  Rng rng(seed);
  const double fx = rng.uniform(0.02, 0.2);
  const double fy = rng.uniform(0.02, 0.2);
  const double fz_ = rng.uniform(0.02, 0.2);
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x)
        f.data[dims.linear(x, y, z)] = static_cast<f32>(
            100.0 * std::sin(fx * static_cast<double>(x)) *
                std::cos(fy * static_cast<double>(y)) +
            10.0 * std::sin(fz_ * static_cast<double>(z)));
  return f;
}

// ---- error-bound invariant across dims x bounds -----------------------------

struct PipelineCase {
  Dims dims;
  double rel_eb;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineProperty, ErrorBoundHolds) {
  const auto [dims, rel_eb] = GetParam();
  const Field f = smooth_field(dims, 17 + dims.count());
  FzParams params;
  params.eb = ErrorBound::relative(rel_eb);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  EXPECT_EQ(c.stats.saturated, 0u);
  const FzDecompressed d = fz_decompress(c.bytes);
  ASSERT_EQ(d.data.size(), f.data.size());
  EXPECT_EQ(d.dims, f.dims);
  EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb))
      << "dims=" << dims.to_string() << " eb=" << rel_eb;
}

TEST_P(PipelineProperty, V1QuantAlsoRoundTrips) {
  const auto [dims, rel_eb] = GetParam();
  const Field f = smooth_field(dims, 31 + dims.count());
  FzParams params;
  params.eb = ErrorBound::relative(rel_eb);
  params.quant = QuantVersion::V1Original;
  params.fused_host_graph = false;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const FzDecompressed d = fz_decompress(c.bytes);
  EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineProperty,
    ::testing::Values(PipelineCase{Dims{100}, 1e-2},
                      PipelineCase{Dims{2048}, 1e-3},
                      PipelineCase{Dims{2049}, 1e-3},  // non-tile-multiple
                      PipelineCase{Dims{10000}, 1e-4},
                      PipelineCase{Dims{37, 23}, 1e-3},
                      PipelineCase{Dims{128, 128}, 1e-4},
                      PipelineCase{Dims{24, 25, 26}, 1e-2},
                      PipelineCase{Dims{64, 64, 64}, 1e-3},
                      PipelineCase{Dims{64, 64, 64}, 1e-4},
                      PipelineCase{Dims{1}, 1e-3},
                      PipelineCase{Dims{3, 3, 3}, 5e-3}));

// ---- behaviour on the synthetic evaluation datasets --------------------------

class PipelineDatasets : public ::testing::TestWithParam<Dataset> {};

TEST_P(PipelineDatasets, BoundHoldsAndNoSaturationAtPaperBounds) {
  const Dataset ds = GetParam();
  Field f = generate_field(ds, scaled_dims(ds, 0.08), 7);
  for (const double rel_eb : {1e-2, 1e-4}) {
    FzParams params;
    params.eb = ErrorBound::relative(rel_eb);
    const FzCompressed c = fz_compress(f.values(), f.dims, params);
    // The paper's u16 choice relies on residuals fitting 15 bits at these
    // bounds; verify that holds on every dataset.
    EXPECT_EQ(c.stats.saturated, 0u) << dataset_name(ds) << " eb=" << rel_eb;
    const FzDecompressed d = fz_decompress(c.bytes);
    EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb))
        << dataset_name(ds) << " eb=" << rel_eb;
    EXPECT_GT(c.stats.ratio(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, PipelineDatasets,
                         ::testing::ValuesIn(all_datasets()),
                         [](const auto& info) {
                           return std::string(dataset_name(info.param));
                         });

// ---- ratio behaviour ---------------------------------------------------------

TEST(Pipeline, LooserBoundNeverCompressesWorse) {
  const Field f = smooth_field(Dims{64, 64, 32}, 3);
  double prev_ratio = 0;
  for (const double eb : {1e-4, 5e-4, 1e-3, 5e-3, 1e-2}) {
    FzParams params;
    params.eb = ErrorBound::relative(eb);
    const FzCompressed c = fz_compress(f.values(), f.dims, params);
    EXPECT_GE(c.stats.ratio(), prev_ratio * 0.98) << eb;  // tiny slack
    prev_ratio = c.stats.ratio();
  }
}

TEST(Pipeline, ConstantFieldHitsRatioCeiling) {
  Field f;
  f.dims = Dims{1 << 16};
  f.data.assign(f.dims.count(), 42.5f);
  FzParams params;
  params.eb = ErrorBound::absolute(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  // Everything collapses to zero blocks: flags + header only.  The code
  // stream is 2n bytes -> flag bits are 2n/16/8... ensure > 100x overall.
  EXPECT_GT(c.stats.ratio(), 100.0);
  const FzDecompressed d = fz_decompress(c.bytes);
  EXPECT_TRUE(error_bounded(f.values(), d.data, 1e-3));
}

TEST(Pipeline, StatsAreConsistent) {
  const Field f = smooth_field(Dims{128, 64}, 5);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  EXPECT_EQ(c.stats.count, f.count());
  EXPECT_EQ(c.stats.input_bytes, f.bytes());
  EXPECT_EQ(c.stats.compressed_bytes, c.bytes.size());
  EXPECT_LE(c.stats.nonzero_blocks, c.stats.total_blocks);
  EXPECT_NEAR(c.stats.bitrate(), 32.0 / c.stats.ratio(), 1e-9);
  EXPECT_EQ(c.stage_costs.size(), 3u);  // pred-quant, fused shuffle, encode
}

TEST(Pipeline, SplitKernelVariantSameBytesDifferentCosts) {
  const Field f = smooth_field(Dims{64, 64}, 6);
  FzParams fused, split;
  fused.eb = split.eb = ErrorBound::relative(1e-3);
  split.fused_bitshuffle_mark = false;
  const FzCompressed a = fz_compress(f.values(), f.dims, fused);
  const FzCompressed b = fz_compress(f.values(), f.dims, split);
  EXPECT_EQ(a.bytes, b.bytes);  // fusion is a pure performance knob
  EXPECT_EQ(b.stage_costs.size(), 4u);
  // The split variant pays an extra global round trip.
  u64 fused_bytes = 0, split_bytes = 0;
  for (const auto& c : a.stage_costs) fused_bytes += c.global_bytes();
  for (const auto& c : b.stage_costs) split_bytes += c.global_bytes();
  EXPECT_GT(split_bytes, fused_bytes);
}

TEST(Pipeline, AbsoluteAndRelativeBoundsAgree) {
  const Field f = smooth_field(Dims{4096}, 8);
  const double range = f.value_range();
  FzParams rel, abs;
  rel.eb = ErrorBound::relative(1e-3);
  abs.eb = ErrorBound::absolute(1e-3 * range);
  const FzCompressed a = fz_compress(f.values(), f.dims, rel);
  const FzCompressed b = fz_compress(f.values(), f.dims, abs);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Pipeline, CompressionIsDeterministic) {
  // Reproducibility matters for archival workflows: the same input and
  // parameters must yield byte-identical streams run to run (the OpenMP
  // loops must not introduce ordering effects).
  const Field f = smooth_field(Dims{96, 96}, 77);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed a = fz_compress(f.values(), f.dims, params);
  const FzCompressed b = fz_compress(f.values(), f.dims, params);
  EXPECT_EQ(a.bytes, b.bytes);
  params.quant = QuantVersion::V1Original;
  params.fused_host_graph = false;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const FzCompressed d = fz_compress(f.values(), f.dims, params);
  EXPECT_EQ(c.bytes, d.bytes);
}

// ---- exhaustive configuration sweep --------------------------------------------

struct SweepCase {
  Dataset ds;
  double rel_eb;
  QuantVersion quant;
  bool fused;
};

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, EveryConfigurationRoundTripsWithinBound) {
  const auto [ds, rel_eb, quant, fused] = GetParam();
  const Field f = generate_field(ds, scaled_dims(ds, 0.06), 101);
  FzParams params;
  params.eb = ErrorBound::relative(rel_eb);
  params.quant = quant;
  params.fused_host_graph = quant != QuantVersion::V1Original;
  params.fused_bitshuffle_mark = fused;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const FzDecompressed d = fz_decompress(c.bytes);
  EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb))
      << dataset_name(ds) << " eb=" << rel_eb
      << " quant=" << static_cast<int>(quant) << " fused=" << fused;
  // V1 on unordered particle data at tight bounds turns almost every
  // residual into an 8-byte outlier and can EXPAND (the paper evaluates
  // HACC log-transformed for exactly this reason); V2 never expands that
  // far because saturating codes stay 2 bytes.
  EXPECT_GT(c.stats.ratio(),
            quant == QuantVersion::V1Original ? 0.4 : 1.0);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const Dataset ds : all_datasets())
    for (const double eb : {1e-2, 1e-4})
      for (const QuantVersion q :
           {QuantVersion::V1Original, QuantVersion::V2Optimized})
        for (const bool fused : {false, true})
          cases.push_back({ds, eb, q, fused});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PipelineSweep,
                         ::testing::ValuesIn(sweep_cases()));

// ---- point-wise relative bounds --------------------------------------------------

TEST(PipelinePointwise, RelativeErrorBoundedPerValue) {
  // Values spanning six orders of magnitude: a range-based bound would
  // obliterate the small values; the point-wise mode preserves each one's
  // relative accuracy (the paper's HACC protocol, 4.1).
  Rng rng(61);
  std::vector<f32> data(20000);
  for (auto& v : data)
    v = static_cast<f32>(std::exp(rng.uniform(-7.0, 7.0)));
  const double rel = 1e-3;
  FzParams params;
  params.eb = ErrorBound::pointwise_relative(rel);
  const FzCompressed c = fz_compress(data, Dims{data.size()}, params);
  const FzDecompressed d = fz_decompress(c.bytes);
  for (size_t i = 0; i < data.size(); ++i) {
    const double ratio = static_cast<double>(d.data[i]) / data[i];
    ASSERT_LE(ratio, (1 + rel) * (1 + 1e-5)) << i;
    ASSERT_GE(ratio, 1.0 / (1 + rel) * (1 - 1e-5)) << i;
  }
}

TEST(PipelinePointwise, RejectsNonPositiveData) {
  std::vector<f32> data{1.0f, 0.0f, 2.0f};
  FzParams params;
  params.eb = ErrorBound::pointwise_relative(1e-3);
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
  data[1] = -1.0f;
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
}

TEST(PipelinePointwise, RejectsOutOfRangeBound) {
  std::vector<f32> data{1.0f, 2.0f};
  FzParams params;
  params.eb = ErrorBound::pointwise_relative(1.5);
  EXPECT_THROW(fz_compress(data, Dims{2}, params), Error);
}

TEST(PipelinePointwise, TransformSurvivesTheStream) {
  // The log flag travels in the header: a fresh decoder context (no
  // params) must undo it.
  Rng rng(62);
  std::vector<f32> data(4096);
  for (auto& v : data) v = static_cast<f32>(std::exp(rng.uniform(0.0, 3.0)));
  FzParams params;
  params.eb = ErrorBound::pointwise_relative(1e-2);
  const FzCompressed c = fz_compress(data, Dims{data.size()}, params);
  const FzDecompressed d = fz_decompress(c.bytes);
  // Decompressed values must be near the ORIGINAL (not log-space) data.
  for (size_t i = 0; i < data.size(); ++i)
    ASSERT_NEAR(d.data[i], data[i], static_cast<double>(data[i]) * 0.011);
}

TEST(PipelinePointwise, WorksThroughChunkedContainers) {
  Rng rng(63);
  std::vector<f32> data(16384);
  for (auto& v : data) v = static_cast<f32>(std::exp(rng.uniform(-3.0, 3.0)));
  ChunkedParams params;
  params.base.eb = ErrorBound::pointwise_relative(1e-3);
  params.num_chunks = 4;
  const ChunkedCompressed c =
      fz_compress_chunked(data, Dims{data.size()}, params);
  const FzDecompressed d = fz_decompress_chunked(c.bytes);
  for (size_t i = 0; i < data.size(); ++i) {
    const double ratio = static_cast<double>(d.data[i]) / data[i];
    ASSERT_LE(std::fabs(ratio - 1.0), 1.1e-3) << i;
  }
}

// ---- double-precision path -----------------------------------------------------

TEST(PipelineF64, RoundTripWithinBound) {
  Rng rng(55);
  std::vector<f64> data(9000);
  f64 acc = 0;
  for (auto& v : data) {
    acc += rng.normal(0.0, 0.25);
    v = acc;
  }
  FzParams params;
  params.eb = ErrorBound::relative(1e-4);
  const FzCompressed c = fz_compress_f64(data, Dims{data.size()}, params);
  EXPECT_EQ(c.stats.input_bytes, data.size() * sizeof(f64));
  const FzDecompressed64 d = fz_decompress_f64(c.bytes);
  ASSERT_EQ(d.data.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i)
    EXPECT_LE(std::fabs(data[i] - d.data[i]), c.stats.abs_eb * (1 + 1e-9)) << i;
}

TEST(PipelineF64, DtypeIsEnforcedAcrossDecoders) {
  std::vector<f64> d64(2048, 1.5);
  d64[7] = 2.5;
  std::vector<f32> d32(2048, 1.5f);
  d32[7] = 2.5f;
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c64 = fz_compress_f64(d64, Dims{2048}, params);
  const FzCompressed c32 = fz_compress(d32, Dims{2048}, params);
  EXPECT_THROW(fz_decompress(c64.bytes), FormatError);
  EXPECT_THROW(fz_decompress_f64(c32.bytes), FormatError);
  EXPECT_EQ(inspect(c64.bytes).dtype_bytes, 8u);
  EXPECT_EQ(inspect(c32.bytes).dtype_bytes, 4u);
}

TEST(PipelineF64, TighterBoundsThanF32AreReachable) {
  // The point of the f64 path: bounds far below f32 precision still hold.
  Rng rng(56);
  std::vector<f64> data(4096);
  f64 acc = 1e6;  // large offset: f32 ulp here is ~0.06
  for (auto& v : data) {
    acc += rng.normal(0.0, 1e-4);
    v = acc;
  }
  FzParams params;
  params.eb = ErrorBound::absolute(1e-6);
  const FzCompressed c = fz_compress_f64(data, Dims{data.size()}, params);
  EXPECT_EQ(c.stats.saturated, 0u);
  const FzDecompressed64 d = fz_decompress_f64(c.bytes);
  for (size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::fabs(data[i] - d.data[i]), 1e-6 * (1 + 1e-9));
}

TEST(PipelineF64, RejectsNonFinite) {
  std::vector<f64> data{1.0, std::numeric_limits<f64>::infinity()};
  FzParams params;
  EXPECT_THROW(fz_compress_f64(data, Dims{2}, params), Error);
}

// ---- header / format robustness ----------------------------------------------

TEST(PipelineFormat, InspectReadsHeader) {
  const Field f = smooth_field(Dims{32, 16}, 9);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const StreamInfo info = inspect(c.bytes);
  EXPECT_EQ(info.dims, f.dims);
  EXPECT_EQ(info.count, f.count());
  EXPECT_EQ(info.quant, QuantVersion::V2Optimized);
  EXPECT_NEAR(info.abs_eb, 1e-3 * f.value_range(), 1e-12);
}

TEST(PipelineFormat, RejectsGarbageAndTruncation) {
  const Field f = smooth_field(Dims{2048}, 10);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  FzCompressed c = fz_compress(f.values(), f.dims, params);

  std::vector<u8> garbage(64, 0xab);
  EXPECT_THROW(fz_decompress(garbage), FormatError);

  std::vector<u8> truncated(c.bytes.begin(), c.bytes.begin() + 16);
  EXPECT_THROW(fz_decompress(truncated), FormatError);

  std::vector<u8> clipped(c.bytes.begin(), c.bytes.end() - 8);
  EXPECT_THROW(fz_decompress(clipped), FormatError);

  std::vector<u8> bad_magic = c.bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(fz_decompress(bad_magic), FormatError);
}

TEST(PipelineFormat, InspectValidatesNotJustTheMagic) {
  const Field f = smooth_field(Dims{16, 16, 8}, 12);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  ASSERT_NO_THROW(inspect(c.bytes));

  // Truncated to less than a header.
  std::vector<u8> tiny(c.bytes.begin(), c.bytes.begin() + 24);
  EXPECT_THROW(inspect(tiny), FormatError);

  // Valid magic but a poisoned field must still be rejected: inspect is the
  // front door for untrusted streams.
  auto corrupt = [&](size_t offset, u8 value) {
    std::vector<u8> s = c.bytes;
    s[offset] = value;
    return s;
  };
  EXPECT_THROW(inspect(corrupt(4, 0x7f)), FormatError);   // version
  EXPECT_THROW(inspect(corrupt(6, 0x09)), FormatError);   // quant
  EXPECT_THROW(inspect(corrupt(7, 0x04)), FormatError);   // rank
  EXPECT_THROW(inspect(corrupt(8, 0x03)), FormatError);   // dtype
  EXPECT_THROW(inspect(corrupt(9, 0x02)), FormatError);   // transform

  // A count that disagrees with the dims (nx low byte) is rejected rather
  // than returned as a bogus allocation size.
  EXPECT_THROW(inspect(corrupt(16, 0xff)), FormatError);

  // Dims blown up past what the stream could possibly encode.
  std::vector<u8> huge = c.bytes;
  for (size_t i = 16; i < 16 + 8; ++i) huge[i] = 0xff;  // nx = 2^64 - 1
  EXPECT_THROW(inspect(huge), FormatError);

  // The non-throwing twin maps every one of those to InvalidStream.
  StreamInfo si;
  EXPECT_EQ(try_inspect(tiny, si).code(), StatusCode::InvalidStream);
  EXPECT_EQ(try_inspect(huge, si).code(), StatusCode::InvalidStream);
  EXPECT_TRUE(try_inspect(c.bytes, si).ok());
  EXPECT_EQ(si.count, f.count());
}

TEST(PipelineFormat, RejectsEmptyInput) {
  FzParams params;
  EXPECT_THROW(fz_compress({}, Dims{0}, params), Error);
  std::vector<f32> one{1.0f};
  EXPECT_THROW(fz_compress(one, Dims{2}, params), Error);  // dims mismatch
}

TEST(PipelineFormat, StructuredInspectReportsSectionLayout) {
  const Field f = smooth_field(Dims{48, 20}, 14);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);

  const StreamInfo info = inspect(c.bytes);
  EXPECT_EQ(info.dims, f.dims);
  EXPECT_EQ(info.count, f.count());
  EXPECT_EQ(info.dtype_bytes, 4u);
  EXPECT_EQ(info.quant, QuantVersion::V2Optimized);
  EXPECT_FALSE(info.log_transform);
  EXPECT_EQ(info.stream_bytes, c.bytes.size());
  // The four sections tile the stream exactly.
  EXPECT_EQ(info.header_bytes + info.bit_flag_bytes + info.block_bytes +
                info.outlier_bytes,
            info.stream_bytes);
  EXPECT_EQ(info.outlier_bytes, 0u);  // V2 streams carry no outlier list
  EXPECT_EQ(info.total_blocks, c.stats.total_blocks);
  EXPECT_EQ(info.nonzero_blocks, c.stats.nonzero_blocks);
  EXPECT_EQ(info.saturated, c.stats.saturated);
  EXPECT_NEAR(info.ratio(), c.stats.ratio(), 1e-12);

  // The deprecated legacy wrapper (kept one release for out-of-tree
  // callers; docs/SERVICE.md has the migration table) reports the same
  // identity fields.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const FzHeaderInfo legacy = fz_inspect(c.bytes);
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy.dims, info.dims);
  EXPECT_EQ(legacy.count, info.count);
  EXPECT_EQ(legacy.quant, info.quant);
  EXPECT_EQ(legacy.dtype_bytes, info.dtype_bytes);
  EXPECT_EQ(legacy.abs_eb, info.abs_eb);
}

TEST(PipelineFormat, StructuredInspectCoversV1AndLogTransform) {
  const Field f = smooth_field(Dims{40, 16}, 15);

  FzParams v1;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  v1.eb = ErrorBound::absolute(1e-2);
  const FzCompressed c1 = fz_compress(f.values(), f.dims, v1);
  const StreamInfo i1 = inspect(c1.bytes);
  EXPECT_EQ(i1.quant, QuantVersion::V1Original);
  EXPECT_EQ(i1.radius, v1.radius);
  EXPECT_EQ(i1.header_bytes + i1.bit_flag_bytes + i1.block_bytes +
                i1.outlier_bytes,
            i1.stream_bytes);

  std::vector<f32> positive(f.values().begin(), f.values().end());
  for (f32& v : positive) v = std::fabs(v) + 1.0f;
  FzParams pw;
  pw.eb = ErrorBound::pointwise_relative(1e-3);
  const FzCompressed c2 = fz_compress(positive, f.dims, pw);
  EXPECT_TRUE(inspect(c2.bytes).log_transform);
}

TEST(PipelineParams, ValidateReturnsOneIssuePerProblem) {
  FzParams good;
  EXPECT_TRUE(good.validate().empty());
  EXPECT_TRUE(good.validate(Dims{16, 16}).empty());

  FzParams bad;
  bad.eb = ErrorBound::absolute(-1.0);
  bad.quant = static_cast<QuantVersion>(9);
  bad.simd = static_cast<SimdDispatch>(200);
  const auto issues = bad.validate();
  ASSERT_EQ(issues.size(), 3u);
  EXPECT_STREQ(issues[0].field, "eb");
  EXPECT_STREQ(issues[1].field, "quant");
  EXPECT_STREQ(issues[2].field, "simd");
  for (const ParamIssue& i : issues) EXPECT_FALSE(i.message.empty());

  FzParams pw;
  pw.eb = ErrorBound::pointwise_relative(1.5);
  ASSERT_EQ(pw.validate().size(), 1u);
  EXPECT_STREQ(pw.validate()[0].field, "eb");

  FzParams v1;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  v1.radius = 40000;
  ASSERT_EQ(v1.validate().size(), 1u);
  EXPECT_STREQ(v1.validate()[0].field, "radius");
  v1.radius = 512;
  EXPECT_TRUE(v1.validate().empty());

  // The fused host graph has no V1 tile body: requesting both must fail at
  // validate() time (not deep inside the stage) with an actionable message.
  FzParams fused_v1;
  fused_v1.quant = QuantVersion::V1Original;
  ASSERT_EQ(fused_v1.validate().size(), 1u);
  EXPECT_STREQ(fused_v1.validate()[0].field, "fused_host_graph");
  EXPECT_NE(fused_v1.validate()[0].message.find("V2 quantization only"),
            std::string::npos);
  EXPECT_NE(fused_v1.validate()[0].message.find("fused_host_graph = false"),
            std::string::npos);
  EXPECT_THROW(Codec{fused_v1}, ParamError);

  EXPECT_STREQ(good.validate(Dims{0, 4}).at(0).field, "dims");
  EXPECT_STREQ(good.validate(Dims{SIZE_MAX / 2, 3}).at(0).field, "dims");
}

TEST(PipelineParams, CodecConstructionThrowsStructuredParamError) {
  FzParams bad;
  bad.eb = ErrorBound::absolute(std::numeric_limits<double>::quiet_NaN());
  bad.quant = static_cast<QuantVersion>(7);
  try {
    Codec codec(bad);
    FAIL() << "Codec accepted invalid params";
  } catch (const ParamError& e) {
    ASSERT_EQ(e.issues().size(), 2u);
    EXPECT_STREQ(e.issues()[0].field, "eb");
    EXPECT_STREQ(e.issues()[1].field, "quant");
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid FzParams"), std::string::npos);
    EXPECT_NE(what.find("[eb]"), std::string::npos);
    EXPECT_NE(what.find("[quant]"), std::string::npos);
  }
  // ParamError is an fz::Error, so existing catch sites keep working.
  EXPECT_THROW(fz_compress(std::vector<f32>(8, 1.0f), Dims{8}, bad), Error);
}

}  // namespace
}  // namespace fz
