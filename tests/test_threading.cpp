// Host-side concurrency tests, written to run meaningfully under
// ThreadSanitizer (the `tsan` CMake preset; scripts/check.sh runs them
// there).  They hammer the thread-safe surfaces PR 1 introduced — the
// BufferPool free list and the parallel chunked codec — from raw
// std::thread workers so TSan sees every interleaving candidate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "common/pool.hpp"
#include "common/thread_pool.hpp"
#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "core/kernels_simd.hpp"
#include "reader/reader.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {
namespace {

std::vector<f32> smooth_field(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.02f * static_cast<f32>(i)) +
           0.02f * static_cast<f32>(rng.normal(0.0, 1.0));
  return v;
}

TEST(Threading, PoolSurvivesConcurrentAcquireReleaseTrim) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        PooledBuffer a = pool.acquire(1024 + 512 * static_cast<size_t>(w));
        PooledBuffer b = pool.acquire(64, /*zeroed=*/false);
        a.data()[0] = static_cast<u8>(i);  // touch the lease
        b.release();
        if (i % 32 == 0) pool.trim();
        if (i % 16 == 0) (void)pool.stats();
      }
    });
  }
  go.store(true);
  for (auto& t : workers) t.join();
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.leased_buffers, 0u);
  EXPECT_EQ(s.hits + s.misses,
            static_cast<size_t>(kThreads) * kIters * 2);
}

TEST(Threading, PerThreadCodecsProduceIdenticalStreams) {
  // One Codec per thread is the supported concurrency model (the chunked
  // runner does exactly this); all workers must agree byte-for-byte.
  const Dims dims{64, 32, 2};
  const auto field = smooth_field(dims.count(), 21);
  std::vector<u8> reference;
  {
    Codec codec;
    reference = codec.compress(field, dims).bytes;
  }
  constexpr int kThreads = 8;
  std::vector<std::vector<u8>> streams(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Codec codec;
      for (int rep = 0; rep < 3; ++rep)
        streams[static_cast<size_t>(w)] = codec.compress(field, dims).bytes;
    });
  }
  for (auto& t : workers) t.join();
  for (const auto& s : streams) EXPECT_EQ(s, reference);
}

TEST(Threading, ParallelChunkedRoundTripMatchesSerial) {
  const Dims dims{32, 16, 16};
  const auto field = smooth_field(dims.count(), 22);

  ChunkedParams serial;
  serial.num_chunks = 8;
  serial.max_parallelism = 1;
  ChunkedParams parallel = serial;
  parallel.max_parallelism = 0;  // one worker per hardware thread

  const ChunkedCompressed a = fz_compress_chunked(field, dims, serial);
  const ChunkedCompressed b = fz_compress_chunked(field, dims, parallel);
  EXPECT_EQ(a.bytes, b.bytes);  // container independent of worker count

  const FzDecompressed out = fz_decompress_chunked(b.bytes, 0);
  ASSERT_EQ(out.data.size(), field.size());
  const double abs_eb = a.stats.abs_eb;
  for (size_t i = 0; i < field.size(); ++i)
    ASSERT_NEAR(out.data[i], field[i], abs_eb * 1.0001) << "at " << i;
}

TEST(Threading, SharedTelemetrySinkAcrossWorkerCodecs) {
  // The documented contract (core/codec.hpp): ONE telemetry::Sink may be
  // shared by any number of codecs on any number of threads — each thread
  // appends to its own recorder, counters are atomic, and snapshot/export
  // may run concurrently with recording.  This is the interleaving TSan
  // must bless.
  const Dims dims{48, 24, 2};
  const auto field = smooth_field(dims.count(), 31);

  telemetry::Sink sink;
  constexpr int kThreads = 6;
  constexpr int kReps = 8;
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      FzParams params;
      params.telemetry = &sink;
      Codec codec(params);
      while (!go.load()) std::this_thread::yield();
      std::vector<f32> out(dims.count());
      for (int rep = 0; rep < kReps; ++rep) {
        const FzCompressed c = codec.compress(field, dims);
        codec.decompress_into(c.bytes, out);
      }
      done.fetch_add(1);
    });
  }
  go.store(true);
  // Snapshot while the workers are still recording: readers must only ever
  // see fully published events.
  while (done.load() < kThreads) {
    for (const auto& ev : sink.snapshot()) ASSERT_NE(ev.name, nullptr);
    std::this_thread::yield();
  }
  for (auto& t : workers) t.join();

  const auto events = sink.snapshot();
  size_t compress_spans = 0;
  for (const auto& ev : events)
    if (std::string_view{ev.name} == "compress") ++compress_spans;
  EXPECT_EQ(compress_spans, static_cast<size_t>(kThreads) * kReps);
  EXPECT_GT(sink.counter(telemetry::Counter::PoolMiss), 0u);
  EXPECT_EQ(sink.counter(telemetry::Counter::EventsDropped), 0u);
}

TEST(Threading, SharedSinkAcrossFusedStripWorkers) {
  // PR5 layers fused-strip parallelism UNDER codec-level threading: each
  // compress fans the tile strips out to parallel_tasks workers, and every
  // strip records a "fused-strip" span into the sink from its own worker
  // thread — while other codecs on other threads do the same into the SAME
  // sink.  TSan must bless the full nesting, and the streams must still be
  // identical across threads (the strip partition is deterministic).
  const Dims dims{64, 256};
  const auto field = smooth_field(dims.count(), 37);

  telemetry::Sink sink;
  constexpr int kThreads = 4;
  constexpr int kReps = 6;
  std::atomic<bool> go{false};
  std::vector<std::vector<u8>> streams(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      FzParams params;
      params.telemetry = &sink;
      params.fused_workers = 3;  // force multi-strip even on 1-core CI
      Codec codec(params);
      while (!go.load()) std::this_thread::yield();
      std::vector<f32> out(dims.count());
      for (int rep = 0; rep < kReps; ++rep) {
        const FzCompressed c = codec.compress(field, dims);
        codec.decompress_into(c.bytes, out);
        streams[static_cast<size_t>(w)] = c.bytes;
      }
    });
  }
  go.store(true);
  for (auto& t : workers) t.join();

  for (int w = 1; w < kThreads; ++w)
    EXPECT_EQ(streams[static_cast<size_t>(w)], streams[0]);

  size_t strip_spans = 0;
  for (const auto& ev : sink.snapshot())
    if (std::string_view{ev.name} == "fused-strip") ++strip_spans;
  // Every compress on every thread emitted one span per strip.
  const FusedParallelPlan plan = fused_parallel_plan(dims, 3);
  ASSERT_GT(plan.strips, 1u);
  EXPECT_EQ(strip_spans,
            static_cast<size_t>(kThreads) * kReps * plan.strips);
  EXPECT_EQ(sink.counter(telemetry::Counter::EventsDropped), 0u);
}

TEST(Threading, ConcurrentDecompressOfSharedStream) {
  // Many threads decompressing the SAME immutable container concurrently:
  // read-only sharing of the stream plus independent output slabs.
  const Dims dims{64, 16, 4};
  const auto field = smooth_field(dims.count(), 23);
  ChunkedParams params;
  params.num_chunks = 4;
  const ChunkedCompressed comp = fz_compress_chunked(field, dims, params);

  constexpr int kThreads = 6;
  std::vector<std::vector<f32>> outputs(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Codec codec;
      std::vector<f32> out(dims.count());
      // Alternate the whole-container and the into-slab paths.
      if (w % 2 == 0) {
        outputs[static_cast<size_t>(w)] =
            fz_decompress_chunked(comp.bytes, 2).data;
      } else {
        for (size_t c = 0; c < fz_chunk_count(comp.bytes); ++c) {
          size_t offset = 0;
          const FzDecompressed chunk =
              fz_decompress_chunk(comp.bytes, c, &offset);
          std::copy(chunk.data.begin(), chunk.data.end(),
                    out.begin() + static_cast<ptrdiff_t>(offset));
        }
        outputs[static_cast<size_t>(w)] = std::move(out);
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w)
    EXPECT_EQ(outputs[static_cast<size_t>(w)], outputs[0]);
}

TEST(Threading, ManyReadersShareOneReaderAndSink) {
  // The fz::Reader concurrency contract: any number of caller threads may
  // read through ONE Reader (one pool, one cache, one telemetry sink) at
  // once.  Disjoint and overlapping slices interleave, so TSan sees demand
  // racing demand on the same chunk, waiters racing the loading worker, and
  // eviction racing in-flight copies (the tiny cache budget forces it).
  const Dims dims{32, 16, 24};
  const auto field = smooth_field(dims.count(), 41);
  ChunkedParams params;
  params.num_chunks = 8;
  const ChunkedCompressed comp = fz_compress_chunked(field, dims, params);
  const std::vector<f32> full = fz_decompress_chunked(comp.bytes).data;

  telemetry::Sink sink;
  ReaderOptions options;
  options.workers = 3;
  options.cache_bytes = 3 * dims.x * dims.y * 3 * sizeof(f32);  // ~3 chunks
  options.telemetry = &sink;
  Reader reader(comp.bytes, options);

  constexpr int kThreads = 6;
  constexpr int kReps = 5;
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    callers.emplace_back([&, w] {
      while (!go.load()) std::this_thread::yield();
      for (int rep = 0; rep < kReps; ++rep) {
        // Even threads sweep disjoint z-slabs; odd threads hammer one
        // overlapping interior window, so cached chunks are shared.
        const size_t z0 = w % 2 == 0
                              ? static_cast<size_t>(w) % 4 * (dims.z / 4)
                              : 8;
        const Slice s{.x = 2,
                      .y = 1,
                      .z = z0,
                      .nx = 28,
                      .ny = 14,
                      .nz = dims.z / 4};
        std::vector<f32> out(s.count());
        reader.read(s, out);
        for (size_t z = 0; z < s.nz; ++z)
          for (size_t y = 0; y < s.ny; ++y)
            for (size_t x = 0; x < s.nx; ++x)
              if (out[(z * s.ny + y) * s.nx + x] !=
                  full[dims.linear(s.x + x, s.y + y, s.z + z)])
                mismatches.fetch_add(1);
      }
    });
  }
  go.store(true);
  // Stats and snapshots race the readers on purpose.
  for (int i = 0; i < 50; ++i) {
    (void)reader.stats();
    (void)sink.snapshot();
    std::this_thread::yield();
  }
  for (auto& t : callers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ReaderStats stats = reader.stats();
  EXPECT_GT(stats.hits, 0u);   // overlapping windows shared decodes
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(stats.resident_bytes, options.cache_bytes);
  EXPECT_EQ(sink.counter(telemetry::Counter::ReaderChunkMiss), stats.misses);
}

TEST(Threading, IndependentReadersOnOneStream) {
  // Separate Readers (each with its own pool and cache) over the same
  // immutable bytes must not interfere — the stream is strictly read-only.
  const Dims dims{48, 32, 8};
  const auto field = smooth_field(dims.count(), 43);
  ChunkedParams params;
  params.num_chunks = 4;
  const ChunkedCompressed comp = fz_compress_chunked(field, dims, params);
  const std::vector<f32> full = fz_decompress_chunked(comp.bytes).data;

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    callers.emplace_back([&, w] {
      Reader reader(comp.bytes, ReaderOptions{.workers = 2});
      std::vector<f32> out(dims.count());
      reader.read(Slice{.nx = 48, .ny = 32, .nz = 8}, out);
      for (size_t i = 0; i < out.size(); ++i)
        if (out[i] != full[i]) mismatches.fetch_add(1);
      (void)w;
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- ThreadPool tasks-never-throw contract -----------------------------------
//
// The pool's contract says tasks must not throw; when one does anyway the
// pool must swallow it, count it in dropped_exceptions(), and keep serving.
// These tests pin that recovery path plus wait_idle()'s accounting while
// submits race in from many threads.

TEST(Threading, PoolCountsThrowingTasksAndStaysUsable) {
  ThreadPool pool(4);
  constexpr int kThrowing = 37;
  constexpr int kNormal = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kThrowing + kNormal; ++i) {
    if (i % 6 == 0 && i / 6 < kThrowing) {
      pool.submit([](size_t) { throw std::runtime_error("contract breach"); });
    } else {
      pool.submit([&](size_t) { ran.fetch_add(1); });
    }
  }
  pool.wait_idle();
  EXPECT_EQ(pool.dropped_exceptions(), static_cast<size_t>(kThrowing));
  EXPECT_EQ(ran.load(), kNormal);

  // The workers that caught those exceptions must still be alive: a second
  // batch has to run to completion on the same pool.
  ran.store(0);
  for (int i = 0; i < kNormal; ++i)
    pool.submit([&](size_t) { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kNormal);
  EXPECT_EQ(pool.dropped_exceptions(), static_cast<size_t>(kThrowing));
}

TEST(Threading, PoolWaitIdleSeesWorkFromConcurrentSubmitters) {
  // wait_idle() must observe everything submitted before the producers
  // finished, even when submits race with workers draining the queue.
  ThreadPool pool(3);
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 250;
  std::atomic<int> ran{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i)
        pool.submit([&](size_t) { ran.fetch_add(1); });
    });
  }
  go.store(true);
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  EXPECT_EQ(pool.dropped_exceptions(), 0u);
}

TEST(Threading, PoolWaitIdleFollowsTasksSubmittedByTasks) {
  // A running task keeps active_ > 0, so a resubmission chain can never slip
  // through wait_idle()'s "queue empty and all idle" predicate: by the time
  // the predicate holds, the whole chain has run.
  ThreadPool pool(2);
  constexpr int kDepth = 64;
  std::atomic<int> hops{0};
  std::function<void(size_t)> hop = [&](size_t) {
    if (hops.fetch_add(1) + 1 < kDepth) pool.submit(hop);
  };
  pool.submit(hop);
  pool.wait_idle();
  EXPECT_EQ(hops.load(), kDepth);

  // Same chain, but every hop throws after scheduling the next one: the
  // exception must neither break the chain nor confuse the idle accounting.
  std::atomic<int> angry_hops{0};
  std::function<void(size_t)> angry = [&](size_t) {
    if (angry_hops.fetch_add(1) + 1 < kDepth) pool.submit(angry);
    throw std::runtime_error("contract breach");
  };
  pool.submit(angry);
  pool.wait_idle();
  EXPECT_EQ(angry_hops.load(), kDepth);
  EXPECT_EQ(pool.dropped_exceptions(), static_cast<size_t>(kDepth));
}

TEST(Threading, ServiceManyClientStress) {
  // The fz::Service under TSan: many raw client threads mixing every job
  // kind while other threads scrape stats and churn the policy table —
  // every cross-thread handoff (admission counters, ring slots, completion
  // flags, latency ring, policy map, shared telemetry sink) gets exercised
  // concurrently.
  telemetry::Sink sink;
  const std::vector<f32> data = smooth_field(16 * 1024, 77);
  const Dims dims{16 * 1024};
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;
  const std::vector<u8> expected = fz_compress(data, dims, params).bytes;

  Service::Options opt;
  opt.workers = 4;
  opt.queue_depth = 16;
  opt.telemetry = &sink;
  Service service(opt);

  constexpr int kClients = 8;
  constexpr int kIters = 30;
  std::atomic<size_t> bad{0};
  std::vector<std::thread> crew;
  crew.reserve(kClients + 2);
  for (int t = 0; t < kClients; ++t) {
    crew.emplace_back([&, t] {
      Request req;
      Response resp;
      for (int i = 0; i < kIters; ++i) {
        const int kind = (t + i) % 3;
        if (kind == 0) {
          req.kind = JobKind::Compress;
          req.dims = dims;
          req.eb = eb;
          req.tenant = static_cast<u32>(t % 4);
          const u8* bytes = reinterpret_cast<const u8*>(data.data());
          req.payload.assign(bytes, bytes + data.size() * sizeof(f32));
        } else if (kind == 1) {
          req.kind = JobKind::Decompress;
          req.payload = expected;
        } else {
          req.kind = JobKind::Inspect;
          req.payload = expected;
        }
        for (;;) {
          const Status s = service.submit(req, resp);
          if (s.code() == StatusCode::QueueFull) {
            std::this_thread::yield();
            continue;
          }
          // PolicyDenied is a legal outcome while the policy churner below
          // has a floor installed; anything else non-Ok is a bug.
          if (!s.ok() && s.code() != StatusCode::PolicyDenied)
            bad.fetch_add(1, std::memory_order_relaxed);
          if (s.ok() && req.kind == JobKind::Compress &&
              resp.payload != expected)
            bad.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  crew.emplace_back([&] {
    for (int i = 0; i < 40; ++i) {
      std::ostringstream os;
      service.write_stats_text(os);
      (void)service.counters();
    }
  });
  crew.emplace_back([&] {
    TenantPolicy strict;
    strict.min_rel_eb = 1e-2;  // tighter-than-floor requests get denied
    for (int i = 0; i < 60; ++i) {
      service.set_policy(2, i % 2 == 0 ? strict : TenantPolicy{});
      service.set_policy(3, TenantPolicy{});
    }
  });
  for (auto& th : crew) th.join();

  EXPECT_EQ(bad.load(), 0u);
  const Service::Counters c = service.counters();
  EXPECT_EQ(c.dropped_exceptions, 0u);
  EXPECT_EQ(c.queue_len, 0u);
}

}  // namespace
}  // namespace fz
