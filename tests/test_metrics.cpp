#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ssim.hpp"

namespace fz {
namespace {

TEST(Distortion, PerfectReconstruction) {
  const std::vector<f32> a{1, 2, 3, 4};
  const DistortionStats d = distortion(a, a);
  EXPECT_EQ(d.max_abs_error, 0);
  EXPECT_EQ(d.mse, 0);
  EXPECT_EQ(d.psnr_db, 999.0);
}

TEST(Distortion, KnownPsnr) {
  // Range 10, uniform error 0.1 -> PSNR = 20 log10(10/0.1) = 40 dB.
  std::vector<f32> a(1000), b(1000);
  for (size_t i = 0; i < 1000; ++i) {
    a[i] = static_cast<f32>(10.0 * (i % 2));
    b[i] = a[i] + 0.1f;
  }
  const DistortionStats d = distortion(a, b);
  EXPECT_NEAR(d.psnr_db, 40.0, 0.05);
  EXPECT_NEAR(d.max_abs_error, 0.1, 1e-6);
  EXPECT_NEAR(d.nrmse, 0.01, 1e-4);
}

TEST(Distortion, MaxErrorPicksWorstPoint) {
  std::vector<f32> a(100, 0.0f), b(100, 0.0f);
  b[57] = 0.5f;
  EXPECT_NEAR(distortion(a, b).max_abs_error, 0.5, 1e-9);
}

TEST(ErrorBounded, DetectsViolations) {
  std::vector<f32> a(10, 0.0f), b(10, 0.0f);
  EXPECT_TRUE(error_bounded(a, b, 1e-6));
  b[3] = 0.002f;
  EXPECT_TRUE(error_bounded(a, b, 0.002));   // exactly at the bound
  EXPECT_FALSE(error_bounded(a, b, 0.001));  // beyond
}

TEST(RatioStats, BitrateIdentity) {
  const RatioStats r = ratio_stats(4000, 1000);
  EXPECT_DOUBLE_EQ(r.ratio, 4.0);
  EXPECT_DOUBLE_EQ(r.bitrate, 8.0);
  EXPECT_EQ(ratio_stats(100, 0).ratio, 0.0);
}

TEST(Ssim, IdenticalImagesScoreOne) {
  Rng rng(1);
  std::vector<f32> img(64 * 48);
  for (auto& v : img) v = static_cast<f32>(rng.uniform());
  EXPECT_NEAR(ssim_2d(img, img, 64, 48), 1.0, 1e-9);
}

TEST(Ssim, NoiseLowersScoreMonotonically) {
  Rng rng(2);
  const size_t nx = 64, ny = 64;
  std::vector<f32> img(nx * ny);
  for (size_t y = 0; y < ny; ++y)
    for (size_t x = 0; x < nx; ++x)
      img[y * nx + x] = static_cast<f32>(std::sin(0.2 * static_cast<double>(x)) +
                                         std::cos(0.15 * static_cast<double>(y)));
  double prev = 1.0;
  for (const double noise : {0.01, 0.05, 0.2, 0.8}) {
    Rng n(3);
    std::vector<f32> noisy = img;
    for (auto& v : noisy) v += static_cast<f32>(n.normal(0.0, noise));
    const double s = ssim_2d(img, noisy, nx, ny);
    EXPECT_LT(s, prev) << noise;
    prev = s;
  }
  EXPECT_LT(prev, 0.5);  // heavy noise destroys structure
}

TEST(Ssim, MeanShiftHurtsLessThanStructureLoss) {
  const size_t nx = 64, ny = 64;
  std::vector<f32> img(nx * ny);
  for (size_t y = 0; y < ny; ++y)
    for (size_t x = 0; x < nx; ++x)
      img[y * nx + x] =
          static_cast<f32>(std::sin(0.2 * static_cast<double>(x + y)));
  std::vector<f32> shifted = img;
  for (auto& v : shifted) v += 0.05f;
  std::vector<f32> flattened(img.size(), 0.0f);
  EXPECT_GT(ssim_2d(img, shifted, nx, ny), ssim_2d(img, flattened, nx, ny));
}

TEST(Ssim, FieldDispatchesByRank) {
  Rng rng(4);
  std::vector<f32> v(4096);
  for (auto& x : v) x = static_cast<f32>(rng.uniform());
  EXPECT_NEAR(ssim_field(v, v, Dims{4096}), 1.0, 1e-9);
  EXPECT_NEAR(ssim_field(v, v, Dims{64, 64}), 1.0, 1e-9);
  EXPECT_NEAR(ssim_field(v, v, Dims{16, 16, 16}), 1.0, 1e-9);
}

TEST(Ssim, RejectsBadShapes) {
  std::vector<f32> v(16);
  EXPECT_THROW(ssim_2d(v, v, 4, 3), Error);
  SsimParams p;
  p.window = 8;
  EXPECT_THROW(ssim_2d(v, v, 4, 4, p), Error);  // window > field
}

}  // namespace
}  // namespace fz
