// Decoder robustness fuzzing: every decoder in the library must reject
// malformed input with FormatError (or Error) — never crash, hang, or
// allocate unboundedly.  Three families of hostile input per decoder:
// random bytes, truncations of valid streams, and single-byte corruptions
// of valid streams.
#include <gtest/gtest.h>

#include "baselines/cuzfp.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/pipeline.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"
#include "substrate/huffman.hpp"
#include "substrate/lz77.hpp"
#include "substrate/rle.hpp"

namespace fz {
namespace {

std::vector<u8> random_bytes(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next_u32());
  return v;
}

/// Run `decode` on hostile input; pass iff it returns normally or throws
/// fz::Error (any subclass).  Anything else (other exception types,
/// crashes) fails the test.
template <typename Fn>
void expect_graceful(Fn&& decode, const std::string& what) {
  try {
    decode();
  } catch (const Error&) {
    return;  // rejected cleanly
  } catch (const std::exception& e) {
    FAIL() << what << " threw a non-fz exception: " << e.what();
  }
  // Returning without throwing is acceptable only when the decoder could
  // legitimately interpret the bytes; reaching here is fine.
}

TEST(Fuzz, FzDecompressRandomBytes) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(16 + seed * 13, seed);
    expect_graceful([&] { fz_decompress(junk); }, "fz_decompress");
  }
}

TEST(Fuzz, FzDecompressTruncations) {
  const Field f = generate_field(Dataset::CESM, Dims{50, 40}, 1);
  FzParams params;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  for (size_t keep = 0; keep < c.bytes.size(); keep += 97) {
    std::vector<u8> cut(c.bytes.begin(),
                        c.bytes.begin() + static_cast<long>(keep));
    expect_graceful([&] { fz_decompress(cut); }, "fz_decompress truncation");
  }
}

TEST(Fuzz, FzDecompressBitflips) {
  const Field f = generate_field(Dataset::CESM, Dims{50, 40}, 2);
  FzParams params;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u8> bad = c.bytes;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { fz_decompress(bad); }, "fz_decompress bitflip");
  }
}

TEST(Fuzz, ChunkedContainerHostileInputs) {
  const Field f = generate_field(Dataset::Hurricane, Dims{16, 16, 8}, 4);
  ChunkedParams params;
  params.num_chunks = 3;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> bad = c.bytes;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { fz_decompress_chunked(bad); }, "chunked bitflip");
  }
  for (u64 seed = 0; seed < 30; ++seed) {
    const auto junk = random_bytes(32 + seed * 7, 100 + seed);
    expect_graceful([&] { fz_decompress_chunked(junk); }, "chunked junk");
  }
}

TEST(Fuzz, HuffmanHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(8 + seed * 11, 200 + seed);
    expect_graceful([&] { huffman_decompress(junk); }, "huffman junk");
  }
  // Bitflips on a valid stream.
  Rng rng(6);
  std::vector<u16> syms(3000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(300));
  const auto stream = huffman_compress(syms, 512);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<u8> bad = stream;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { huffman_decompress(bad); }, "huffman bitflip");
  }
}

TEST(Fuzz, LzHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(4 + seed * 9, 300 + seed);
    expect_graceful([&] { lz_decompress(junk, 1000); }, "lz junk");
  }
}

TEST(Fuzz, RleHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    auto junk = random_bytes(3 * (1 + seed), 400 + seed);
    expect_graceful([&] { rle_decode(junk, 64); }, "rle junk");
  }
}

TEST(Fuzz, ZfpHostileInputs) {
  using bench::zfp_decompress;
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(16 + seed * 17, 500 + seed);
    expect_graceful([&] { zfp_decompress(junk); }, "zfp junk");
  }
  const Field f = generate_field(Dataset::Nyx, Dims{16, 16, 16}, 7);
  const auto stream = bench::zfp_compress(f.values(), f.dims, 8.0);
  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> bad = stream;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { zfp_decompress(bad); }, "zfp bitflip");
  }
}

TEST(Fuzz, CompressRejectsNonFiniteData) {
  std::vector<f32> data{1.0f, std::numeric_limits<f32>::quiet_NaN(), 3.0f};
  FzParams params;
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
  data[1] = std::numeric_limits<f32>::infinity();
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
}

}  // namespace
}  // namespace fz
