// Decoder robustness fuzzing: every decoder in the library must reject
// malformed input with FormatError (or Error) — never crash, hang, or
// allocate unboundedly.  Three families of hostile input per decoder:
// random bytes, truncations of valid streams, and single-byte corruptions
// of valid streams.
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/cuzfp.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"
#include "reader/reader.hpp"
#include "substrate/bitio.hpp"
#include "substrate/histogram.hpp"
#include "substrate/huffman.hpp"
#include "substrate/lz77.hpp"
#include "substrate/rle.hpp"

namespace fz {
namespace {

std::vector<u8> random_bytes(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next_u32());
  return v;
}

/// Run `decode` on hostile input; pass iff it returns normally or throws
/// fz::Error (any subclass).  Anything else (other exception types,
/// crashes) fails the test.
template <typename Fn>
void expect_graceful(Fn&& decode, const std::string& what) {
  try {
    decode();
  } catch (const Error&) {
    return;  // rejected cleanly
  } catch (const std::exception& e) {
    FAIL() << what << " threw a non-fz exception: " << e.what();
  }
  // Returning without throwing is acceptable only when the decoder could
  // legitimately interpret the bytes; reaching here is fine.
}

TEST(Fuzz, FzDecompressRandomBytes) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(16 + seed * 13, seed);
    expect_graceful([&] { fz_decompress(junk); }, "fz_decompress");
  }
}

TEST(Fuzz, FzDecompressTruncations) {
  const Field f = generate_field(Dataset::CESM, Dims{50, 40}, 1);
  FzParams params;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  for (size_t keep = 0; keep < c.bytes.size(); keep += 97) {
    std::vector<u8> cut(c.bytes.begin(),
                        c.bytes.begin() + static_cast<long>(keep));
    expect_graceful([&] { fz_decompress(cut); }, "fz_decompress truncation");
  }
}

TEST(Fuzz, FzDecompressBitflips) {
  const Field f = generate_field(Dataset::CESM, Dims{50, 40}, 2);
  FzParams params;
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u8> bad = c.bytes;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { fz_decompress(bad); }, "fz_decompress bitflip");
  }
}

TEST(Fuzz, ChunkedContainerHostileInputs) {
  const Field f = generate_field(Dataset::Hurricane, Dims{16, 16, 8}, 4);
  ChunkedParams params;
  params.num_chunks = 3;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> bad = c.bytes;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { fz_decompress_chunked(bad); }, "chunked bitflip");
  }
  for (u64 seed = 0; seed < 30; ++seed) {
    const auto junk = random_bytes(32 + seed * 7, 100 + seed);
    expect_graceful([&] { fz_decompress_chunked(junk); }, "chunked junk");
  }
}

// ---- container chunk index --------------------------------------------------
//
// The v2 index is the part of the container an attacker controls completely
// (offsets, sizes, element placement) and the part every random-access path
// trusts, so it gets its own fuzz family: bitflips confined to the header +
// index region, truncations through it, and hand-patched entries that are
// individually plausible but violate the tiling invariants.

std::vector<u8> chunked_container(unsigned version, u64 seed) {
  const Field f = generate_field(Dataset::Hurricane, Dims{16, 12, 9}, seed);
  ChunkedParams params;
  params.num_chunks = 3;
  params.container_version = version;
  return fz_compress_chunked(f.values(), f.dims, params).bytes;
}

/// Every container entry point must agree that the stream is hostile (or
/// decode it to something bounded) — parse, full decompress, single-chunk
/// access, and the Reader.
void expect_container_graceful(const std::vector<u8>& bytes,
                               const std::string& what) {
  expect_graceful([&] { fz_container_info(bytes); }, what + " (info)");
  expect_graceful([&] { fz_decompress_chunked(bytes); }, what + " (decode)");
  expect_graceful([&] { fz_decompress_chunk(bytes, 1); }, what + " (chunk)");
  expect_graceful([&] { Reader r(bytes, ReaderOptions{.workers = 1}); },
                  what + " (reader)");
}

TEST(Fuzz, ContainerIndexBitflips) {
  const std::vector<u8> good = chunked_container(2, 11);
  const ContainerInfo info = fz_container_info(good);
  ASSERT_EQ(info.version, 2u);
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<u8> bad = good;
    // Confine flips to the header + index so every trial attacks the index
    // machinery rather than some chunk's payload.
    bad[rng.below(info.header_bytes)] ^= static_cast<u8>(1u << rng.below(8));
    expect_container_graceful(bad, "v2 index bitflip");
  }
}

TEST(Fuzz, ContainerIndexTruncations) {
  const std::vector<u8> good = chunked_container(2, 13);
  for (size_t keep = 0; keep < good.size(); keep += 31)
    expect_container_graceful(
        std::vector<u8>(good.begin(), good.begin() + static_cast<long>(keep)),
        "v2 truncation");
}

TEST(Fuzz, ContainerIndexHostileEntries) {
  const std::vector<u8> good = chunked_container(2, 14);
  const auto patch_entry = [&](size_t i, const ChunkIndexEntry& e) {
    std::vector<u8> bad = good;
    std::memcpy(bad.data() + sizeof(ContainerHeaderV2) +
                    i * sizeof(ChunkIndexEntry),
                &e, sizeof(e));
    return bad;
  };
  const auto read_entry = [&](size_t i) {
    ChunkIndexEntry e;
    std::memcpy(&e,
                good.data() + sizeof(ContainerHeaderV2) +
                    i * sizeof(ChunkIndexEntry),
                sizeof(e));
    return e;
  };

  // Overlapping byte ranges: entry 1 claims bytes inside entry 0's stream.
  ChunkIndexEntry e = read_entry(1);
  e.offset = read_entry(0).offset + 1;
  EXPECT_THROW(fz_container_info(patch_entry(1, e)), FormatError);

  // Overlapping element ranges: entry 1 restates entry 0's slab.
  e = read_entry(1);
  e.elem_offset = 0;
  EXPECT_THROW(fz_container_info(patch_entry(1, e)), FormatError);

  // A gap in the tiling (chunk 1's slab missing a row).
  e = read_entry(1);
  e.ny -= 1;
  EXPECT_THROW(fz_container_info(patch_entry(1, e)), FormatError);

  // Byte range past the end of the stream.
  e = read_entry(2);
  e.bytes += 4096;
  EXPECT_THROW(fz_container_info(patch_entry(2, e)), FormatError);

  // Offset pointing into the index itself.
  e = read_entry(0);
  e.offset = sizeof(ContainerHeaderV2);
  EXPECT_THROW(fz_container_info(patch_entry(0, e)), FormatError);

  // The O(1) single-chunk path validates its one entry too.
  e = read_entry(1);
  e.bytes = 0;
  EXPECT_THROW(fz_decompress_chunk(patch_entry(1, e), 1), FormatError);
}

TEST(Fuzz, LegacyContainerHostileInputs) {
  const std::vector<u8> good = chunked_container(1, 15);
  ASSERT_EQ(fz_container_info(good).version, 1u);
  Rng rng(16);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<u8> bad = good;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_container_graceful(bad, "v1 bitflip");
  }
  for (size_t keep = 0; keep < good.size(); keep += 53)
    expect_container_graceful(
        std::vector<u8>(good.begin(), good.begin() + static_cast<long>(keep)),
        "v1 truncation");
}

TEST(Fuzz, ReaderHostileInputs) {
  for (u64 seed = 0; seed < 30; ++seed) {
    const auto junk = random_bytes(24 + seed * 19, 600 + seed);
    expect_graceful([&] { Reader r(junk, ReaderOptions{.workers = 1}); },
                    "reader junk");
  }
}

TEST(Fuzz, HuffmanHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(8 + seed * 11, 200 + seed);
    expect_graceful([&] { huffman_decompress(junk); }, "huffman junk");
  }
  // Bitflips on a valid stream.
  Rng rng(6);
  std::vector<u16> syms(3000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(300));
  const auto stream = huffman_compress(syms, 512);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<u8> bad = stream;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { huffman_decompress(bad); }, "huffman bitflip");
  }
}

// ---- gap-array Huffman streams ---------------------------------------------
//
// The v2 header hands an attacker three coupled tables (chunk sizes, gap
// offsets, segment geometry); every inconsistency must die in
// parse_huffman_layout or a bounds-checked consume — never out-of-bounds.

std::vector<u8> patched_u32(std::vector<u8> s, size_t off, u32 v) {
  std::memcpy(s.data() + off, &v, sizeof(v));
  return s;
}

TEST(Fuzz, HuffmanGapHostileHeaders) {
  Rng rng(31);
  std::vector<u16> syms(20000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(300));
  const auto hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  const auto good = huffman_encode(syms, book);
  ASSERT_EQ(huffman_decode(good, book), syms);
  const auto attack = [&](std::vector<u8> bad, const std::string& what) {
    expect_graceful([&] { huffman_decode(bad, book); }, what);
  };
  // v2 header layout: magic@0, num_chunks@4, chunk_size@8, segment_size@12,
  // count@16 (u64), then the chunk-size table.
  // Chunk table far larger than the stream: must fail the size check
  // before the table allocation, not allocate 4 GB.
  EXPECT_THROW(
      huffman_decode(patched_u32(good, 4, 0x40000000u), book), FormatError);
  // Zero chunk size / zero segment size on a v2 stream.
  EXPECT_THROW(huffman_decode(patched_u32(good, 8, 0), book), FormatError);
  EXPECT_THROW(huffman_decode(patched_u32(good, 12, 0), book), FormatError);
  // Undersized gap array: segment_size=1 implies ~20k gap words the stream
  // does not contain.
  EXPECT_THROW(huffman_decode(patched_u32(good, 12, 1), book), FormatError);
  // Oversized gap array claim: a huge segment size means fewer gap words
  // than present, shearing the payload framing.
  attack(patched_u32(good, 12, 1u << 30), "huffman oversized segments");
  // Chunk-count / symbol-count mismatch.
  EXPECT_THROW(
      huffman_decode(patched_u32(good, 4, 1), book), FormatError);
  // First chunk claims more payload bytes than the stream holds.
  EXPECT_THROW(
      huffman_decode(patched_u32(good, 24, 0x7fffffffu), book), FormatError);
  // Gap offset beyond the chunk's bit length.
  const size_t gap0 = 24 + parse_huffman_layout(good).num_chunks * 4;
  EXPECT_THROW(
      huffman_decode(patched_u32(good, gap0, 0xffffffffu), book), FormatError);
  // Truncations through header, gap array and payload.
  for (size_t keep = 0; keep < good.size(); keep += 101)
    attack(std::vector<u8>(good.begin(), good.begin() + static_cast<long>(keep)),
           "huffman gap truncation");
  // Random bitflips anywhere in the stream.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u8> bad = good;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    attack(bad, "huffman gap bitflip");
  }
}

TEST(Fuzz, HuffmanRejectsHostileLengthTables) {
  // huffman_decompress carries the length table in-stream; an
  // over-subscribed or overlong table must die in the canonical rebuild,
  // before any decode table is sized from it.
  const auto craft = [](std::initializer_list<u8> lengths) {
    std::vector<u8> s;
    ByteWriter w(s);
    w.put<u32>(static_cast<u32>(lengths.size()));
    for (const u8 l : lengths) w.put<u8>(l);
    w.put<u32>(0);   // v1 encode header: num_chunks
    w.put<u32>(16);  // chunk_size
    w.put<u64>(0);   // count
    return s;
  };
  // Kraft sum 2 > 1: four codes of length 1.
  EXPECT_THROW(huffman_decompress(craft({1, 1, 1, 1})), FormatError);
  // Length beyond the 63-bit code register.
  EXPECT_THROW(huffman_decompress(craft({200, 0, 0, 0})), FormatError);
  // Subtler over-subscription at mixed lengths.
  EXPECT_THROW(huffman_decompress(craft({1, 2, 2, 2})), FormatError);
  // A well-formed table through the same path still works.
  const auto ok = craft({1, 2, 2, 0});
  EXPECT_TRUE(huffman_decompress(ok).empty());
}

TEST(Fuzz, LzHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(4 + seed * 9, 300 + seed);
    expect_graceful([&] { lz_decompress(junk, 1000); }, "lz junk");
  }
}

TEST(Fuzz, RleHostileInputs) {
  for (u64 seed = 0; seed < 50; ++seed) {
    auto junk = random_bytes(3 * (1 + seed), 400 + seed);
    expect_graceful([&] { rle_decode(junk, 64); }, "rle junk");
  }
}

TEST(Fuzz, ZfpHostileInputs) {
  using bench::zfp_decompress;
  for (u64 seed = 0; seed < 50; ++seed) {
    const auto junk = random_bytes(16 + seed * 17, 500 + seed);
    expect_graceful([&] { zfp_decompress(junk); }, "zfp junk");
  }
  const Field f = generate_field(Dataset::Nyx, Dims{16, 16, 16}, 7);
  const auto stream = bench::zfp_compress(f.values(), f.dims, 8.0);
  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> bad = stream;
    bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
    expect_graceful([&] { zfp_decompress(bad); }, "zfp bitflip");
  }
}

TEST(Fuzz, CompressRejectsNonFiniteData) {
  std::vector<f32> data{1.0f, std::numeric_limits<f32>::quiet_NaN(), 3.0f};
  FzParams params;
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
  data[1] = std::numeric_limits<f32>::infinity();
  EXPECT_THROW(fz_compress(data, Dims{3}, params), Error);
}

}  // namespace
}  // namespace fz
