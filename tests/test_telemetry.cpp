// fz::telemetry contract tests: every stage emits exactly one span per run
// (fused and unfused, f32 and f64, compress and decompress, chunked
// per-worker), counters track the pool, exporters emit valid output, and a
// codec with no sink behaves byte-identically to a traced one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "cudasim/launch.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {
namespace {

using telemetry::Counter;
using telemetry::ScopedSink;
using telemetry::Sink;
using telemetry::Span;
using telemetry::TraceEvent;

std::vector<f32> wave(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<f32>(50.0 + 20.0 * std::sin(static_cast<double>(i) * 0.07) +
                            rng.uniform(-0.2, 0.2));
  return v;
}

std::map<std::string, size_t> span_counts(const Sink& sink) {
  std::map<std::string, size_t> counts;
  for (const TraceEvent& ev : sink.snapshot()) ++counts[ev.name];
  return counts;
}

double find_arg(const TraceEvent& ev, const char* key) {
  for (u32 i = 0; i < ev.n_args; ++i)
    if (std::string_view{ev.args[i].key} == key) return ev.args[i].value;
  ADD_FAILURE() << "span " << ev.name << " missing arg " << key;
  return -1;
}

TEST(Telemetry, UnfusedCompressEmitsOneSpanPerStage) {
  const std::vector<f32> data = wave(4096, 3);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.fused_host_graph = false;
  params.telemetry = &sink;
  Codec codec(params);
  codec.compress(data, Dims{data.size()});

  const auto counts = span_counts(sink);
  for (const char* stage : {"compress", "resolve-transform", "dual-quant",
                            "bitshuffle-mark", "prefix-sum-encode", "assemble"})
    EXPECT_EQ(counts.at(stage), 1u) << stage;
  EXPECT_EQ(counts.count("fused-quant-shuffle-mark"), 0u);
}

TEST(Telemetry, FusedCompressEmitsOneSpanPerStage) {
  const std::vector<f32> data = wave(4096, 5);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.fused_host_graph = true;
  params.telemetry = &sink;
  Codec codec(params);
  codec.compress(data, Dims{data.size()});

  const auto counts = span_counts(sink);
  for (const char* stage : {"compress", "resolve-transform",
                            "fused-quant-shuffle-mark", "prefix-sum-encode",
                            "assemble"})
    EXPECT_EQ(counts.at(stage), 1u) << stage;
  EXPECT_EQ(counts.count("dual-quant"), 0u);
  EXPECT_EQ(counts.count("bitshuffle-mark"), 0u);
}

TEST(Telemetry, DecompressAndF64EmitOneSpanPerStage) {
  const std::vector<f32> narrow = wave(2048, 7);
  const std::vector<f64> data(narrow.begin(), narrow.end());
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.telemetry = &sink;
  Codec codec(params);
  const FzCompressed c = codec.compress(std::span<const f64>{data},
                                        Dims{data.size()});
  std::vector<f64> out(data.size());
  codec.decompress_into(c.bytes, out);

  const auto counts = span_counts(sink);
  EXPECT_EQ(counts.at("compress"), 1u);
  for (const char* stage :
       {"decompress", "parse-header", "fused-decode", "reconstruct"})
    EXPECT_EQ(counts.at(stage), 1u) << stage;

  // The unfused graph (fused_decompress off) still emits its classic
  // stage spans.
  Sink unfused_sink;
  params.telemetry = &unfused_sink;
  params.fused_decompress = false;
  Codec unfused(params);
  unfused.decompress_into(c.bytes, out);
  const auto unfused_counts = span_counts(unfused_sink);
  for (const char* stage : {"decompress", "parse-header", "scatter-unshuffle",
                            "inverse-quant", "reconstruct"})
    EXPECT_EQ(unfused_counts.at(stage), 1u) << stage;
}

TEST(Telemetry, RunSpanCarriesAttributesAndNestsStages) {
  const std::vector<f32> data = wave(8192, 9);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.telemetry = &sink;
  Codec codec(params);
  const FzCompressed c = codec.compress(data, Dims{data.size()});

  const auto events = sink.snapshot();
  const auto run = std::find_if(events.begin(), events.end(),
                                [](const TraceEvent& ev) {
                                  return std::string_view{ev.name} == "compress";
                                });
  ASSERT_NE(run, events.end());
  EXPECT_EQ(find_arg(*run, "bytes_in"), static_cast<double>(data.size() * 4));
  EXPECT_EQ(find_arg(*run, "bytes_out"), static_cast<double>(c.bytes.size()));
  EXPECT_GE(find_arg(*run, "tiles"), 1.0);
  EXPECT_GT(find_arg(*run, "pool_misses"), 0.0);  // cold pool

  // Stage spans nest inside the run span: deeper, and contained in time.
  for (const TraceEvent& ev : events) {
    if (std::string_view{ev.name} == "compress") continue;
    EXPECT_GT(ev.depth, run->depth) << ev.name;
    EXPECT_GE(ev.start_ns, run->start_ns) << ev.name;
    EXPECT_LE(ev.start_ns + ev.dur_ns, run->start_ns + run->dur_ns) << ev.name;
  }
}

TEST(Telemetry, ChunkedRecordsPerWorkerSpans) {
  const std::vector<f32> data = wave(6144, 11);
  Sink sink;
  ChunkedParams params;
  params.base.eb = ErrorBound::absolute(1e-2);
  params.base.telemetry = &sink;
  params.num_chunks = 4;
  const ChunkedCompressed c =
      fz_compress_chunked(data, Dims{data.size()}, params);

  const auto events = sink.snapshot();
  size_t chunk_spans = 0;
  std::vector<bool> seen(4, false);
  for (const TraceEvent& ev : events) {
    if (std::string_view{ev.name} != "chunk-compress") continue;
    ++chunk_spans;
    const auto chunk = static_cast<size_t>(find_arg(ev, "chunk"));
    ASSERT_LT(chunk, seen.size());
    EXPECT_FALSE(seen[chunk]) << "chunk " << chunk << " compressed twice";
    seen[chunk] = true;
    EXPECT_GE(find_arg(ev, "worker"), 0.0);
    EXPECT_GT(find_arg(ev, "bytes_out"), 0.0);
  }
  EXPECT_EQ(chunk_spans, 4u);

  const auto counts = span_counts(sink);
  EXPECT_EQ(counts.at("compress-chunked"), 1u);
  EXPECT_EQ(counts.at("compress"), 4u);  // one codec run per chunk
  (void)c;
}

TEST(Telemetry, PoolCountersTrackHitsAndMisses) {
  const std::vector<f32> data = wave(4096, 13);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.telemetry = &sink;
  Codec codec(params);

  codec.compress(data, Dims{data.size()});
  const u64 cold_misses = sink.counter(Counter::PoolMiss);
  EXPECT_GT(cold_misses, 0u);
  EXPECT_EQ(sink.counter(Counter::PoolHit), 0u);
  EXPECT_GT(sink.counter(Counter::PoolBytesAllocated), 0u);

  codec.compress(data, Dims{data.size()});
  EXPECT_EQ(sink.counter(Counter::PoolMiss), cold_misses);
  EXPECT_GT(sink.counter(Counter::PoolHit), 0u);
}

TEST(Telemetry, DisabledSinkIsByteIdentical) {
  const std::vector<f32> data = wave(4096, 17);
  FzParams plain;
  plain.eb = ErrorBound::relative(1e-3);
  Codec codec_plain(plain);
  const FzCompressed expected = codec_plain.compress(data, Dims{data.size()});

  Sink sink;
  FzParams traced = plain;
  traced.telemetry = &sink;
  Codec codec_traced(traced);
  EXPECT_EQ(codec_traced.compress(data, Dims{data.size()}).bytes,
            expected.bytes);

  // And the untraced codec recorded nothing, anywhere.
  EXPECT_TRUE(span_counts(sink).count("compress"));
  EXPECT_EQ(codec_plain.telemetry_sink(), nullptr);
}

TEST(Telemetry, RecorderGrowsPastOneChunkWithoutLoss) {
  Sink sink;
  constexpr size_t kSpans = 3000;  // ~3 chunks of 1024
  for (size_t i = 0; i < kSpans; ++i) {
    Span span(&sink, "tick");
    span.arg("i", static_cast<double>(i));
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), kSpans);
  EXPECT_EQ(sink.counter(Counter::EventsDropped), 0u);
  // snapshot() sorts by start time; a single thread's spans are sequential.
  for (size_t i = 0; i < kSpans; ++i)
    EXPECT_EQ(events[i].args[0].value, static_cast<double>(i));
}

TEST(Telemetry, ChromeTraceIsWellFormed) {
  const std::vector<f32> data = wave(2048, 19);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.telemetry = &sink;
  Codec codec(params);
  codec.compress(data, Dims{data.size()});

  std::ostringstream os;
  sink.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"compress\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("counter/pool_misses"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  // Balanced braces is a cheap structural check; scripts/validate_trace.py
  // does the full JSON parse in CI.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.back(), '\n');
}

TEST(Telemetry, SummaryAggregatesStages) {
  const std::vector<f32> data = wave(2048, 23);
  Sink sink;
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  params.telemetry = &sink;
  Codec codec(params);
  const FzCompressed c = codec.compress(data, Dims{data.size()});
  codec.compress(data, Dims{data.size()});

  const auto rows = sink.stage_summaries();
  const auto it = std::find_if(rows.begin(), rows.end(),
                               [](const auto& r) { return r.name == "compress"; });
  ASSERT_NE(it, rows.end());
  EXPECT_EQ(it->count, 2u);
  EXPECT_GT(it->total_ms, 0.0);
  EXPECT_GT(it->gbps, 0.0);

  std::ostringstream os;
  sink.write_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("compress"), std::string::npos);
  EXPECT_NE(text.find("pool_misses"), std::string::npos);
  EXPECT_NE(text.find("compression ratio"), std::string::npos);
  (void)c;
}

TEST(Telemetry, CudasimLaunchRecordsCostSheetAttributes) {
  Sink sink;
  {
    ScopedSink scope(&sink);
    cudasim::LaunchConfig cfg;
    cfg.name = "toy-kernel";
    cfg.grid = cudasim::Dim3{2};
    cfg.block = cudasim::Dim3{32};
    std::vector<u32> out(64);
    cudasim::launch(cfg, [&](cudasim::ThreadCtx& t) {
      const u32 g = t.block_idx.x * 32 + t.linear_tid();
      out[g] = g;
      t.count_global_write(sizeof(u32));
      t.count_ops(1);
    });
  }
  const auto events = sink.snapshot();
  const auto it = std::find_if(events.begin(), events.end(),
                               [](const TraceEvent& ev) {
                                 return std::string_view{ev.name} == "toy-kernel";
                               });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(find_arg(*it, "global_bytes_written"), 64.0 * sizeof(u32));
  EXPECT_GE(find_arg(*it, "thread_ops"), 64.0);
}

TEST(Telemetry, ScopedSinkIsPickedUpByCodecAndRestored) {
  const std::vector<f32> data = wave(1024, 29);
  Sink sink;
  {
    ScopedSink scope(&sink);
    EXPECT_EQ(telemetry::active_sink(), &sink);
    Codec codec;  // no explicit sink: falls back to the scoped one
    EXPECT_EQ(codec.telemetry_sink(), &sink);
    codec.compress(data, Dims{data.size()});
  }
  EXPECT_NE(telemetry::active_sink(), &sink);
  EXPECT_EQ(span_counts(sink).at("compress"), 1u);
}

TEST(Telemetry, InternKeepsNameAliveAndDeduplicates) {
  Sink sink;
  const char* a = nullptr;
  {
    std::string name = "ephemeral-" + std::to_string(42);
    a = sink.intern(name);
  }  // original string destroyed
  const char* b = sink.intern(std::string("ephemeral-42"));
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "ephemeral-42");
}

TEST(Telemetry, SinkMergesSpansFromMultipleThreads) {
  Sink sink;
  constexpr size_t kThreads = 4, kEach = 200;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&sink] {
      for (size_t i = 0; i < kEach; ++i) Span span(&sink, "worker-tick");
    });
  for (auto& t : threads) t.join();

  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), kThreads * kEach);
  std::map<u32, size_t> per_tid;
  for (const TraceEvent& ev : events) ++per_tid[ev.tid];
  EXPECT_EQ(per_tid.size(), kThreads);  // one timeline per thread
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, kEach) << "tid " << tid;
}

}  // namespace
}  // namespace fz
