#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "cudasim/device_model.hpp"
#include "cudasim/launch.hpp"

namespace fz::cudasim {
namespace {

TEST(CudaSim, GeometryAndLinearIds) {
  std::vector<u32> ids(4 * 8 * 2, 0xffffffff);
  LaunchConfig cfg;
  cfg.grid = Dim3{2};
  cfg.block = Dim3{4, 8};
  launch(cfg, [&](ThreadCtx& t) {
    const u32 g = t.block_idx.x * 32 + t.linear_tid();
    ids[g] = t.thread_idx.x + 10 * t.thread_idx.y;
  });
  for (u32 b = 0; b < 2; ++b)
    for (u32 y = 0; y < 8; ++y)
      for (u32 x = 0; x < 4; ++x) EXPECT_EQ(ids[b * 32 + y * 4 + x], x + 10 * y);
}

TEST(CudaSim, BallotCollectsLanePredicates) {
  u32 result = 0;
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  launch(cfg, [&](ThreadCtx& t) {
    const u32 bal = t.ballot(t.lane() % 3 == 0);
    if (t.lane() == 0) result = bal;
  });
  u32 expect = 0;
  for (u32 l = 0; l < 32; ++l)
    if (l % 3 == 0) expect |= 1u << l;
  EXPECT_EQ(result, expect);
}

TEST(CudaSim, SequentialBallotsDoNotInterfere) {
  // Two back-to-back ballots per lane; results must not leak across rounds.
  std::vector<u32> r1(32), r2(32);
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  launch(cfg, [&](ThreadCtx& t) {
    r1[t.lane()] = t.ballot(t.lane() < 5);
    r2[t.lane()] = t.ballot(t.lane() >= 30);
  });
  for (u32 l = 0; l < 32; ++l) {
    EXPECT_EQ(r1[l], 0x1fu);
    EXPECT_EQ(r2[l], 0xc0000000u);
  }
}

TEST(CudaSim, ManyBallotRounds) {
  // The bitshuffle kernel does 32 rounds; stress the mailbox recycling.
  std::vector<u32> acc(32, 0);
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{64};  // two warps
  launch(cfg, [&](ThreadCtx& t) {
    for (u32 i = 0; i < 32; ++i) {
      const u32 bal = t.ballot((t.lane() >> (i % 5)) & 1);
      if (t.linear_tid() < 32) acc[i] ^= bal & 1u << t.lane();
    }
  });
  SUCCEED();  // no deadlock / no assertion: the machinery held up
}

TEST(CudaSim, AnyAndShfl) {
  std::vector<u32> shfl_out(32);
  bool any_true = false, any_false = true;
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  launch(cfg, [&](ThreadCtx& t) {
    if (t.lane() == 0) {
      any_true = t.any(t.lane() == 31);   // some lane satisfies it
      any_false = t.any(t.lane() == 99);  // nobody does
    } else {
      t.any(t.lane() == 31);
      t.any(t.lane() == 99);
    }
    shfl_out[t.lane()] = t.shfl(t.lane() * 7, 5);
  });
  EXPECT_TRUE(any_true);
  EXPECT_FALSE(any_false);
  for (u32 l = 0; l < 32; ++l) EXPECT_EQ(shfl_out[l], 35u);
}

TEST(CudaSim, ShflButterflyReduction) {
  // The xor-shuffle reduction pattern the cuSZx stats kernel relies on:
  // after log2(32) rounds every lane holds the warp-wide sum.
  std::vector<u32> out(32);
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  launch(cfg, [&](ThreadCtx& t) {
    u32 v = t.lane() + 1;  // 1..32, sum = 528
    for (u32 offset = 16; offset > 0; offset >>= 1)
      v += t.shfl(v, t.lane() ^ offset);
    out[t.lane()] = v;
  });
  for (const u32 v : out) EXPECT_EQ(v, 528u);
}

TEST(CudaSim, SyncThreadsOrdersPhases) {
  // Classic shared-memory reversal: without a working barrier this reads
  // garbage.
  std::vector<u32> out(256);
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{256};
  launch(cfg, [&](ThreadCtx& t) {
    u32* sh = t.shared<u32>("buf", 256);
    sh[t.linear_tid()] = t.linear_tid() * 3;
    t.sync_threads();
    out[t.linear_tid()] = sh[255 - t.linear_tid()];
  });
  for (u32 i = 0; i < 256; ++i) EXPECT_EQ(out[i], (255 - i) * 3);
}

TEST(CudaSim, EarlyExitThreadsDoNotBlockBarrier) {
  std::vector<u32> out(64, 0);
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{64};
  launch(cfg, [&](ThreadCtx& t) {
    if (t.linear_tid() >= 48) return;  // whole second half of warp 1 exits
    u32* sh = t.shared<u32>("buf", 64);
    sh[t.linear_tid()] = 1;
    t.sync_threads();
    out[t.linear_tid()] = sh[t.linear_tid()];
  });
  for (u32 i = 0; i < 48; ++i) EXPECT_EQ(out[i], 1u);
}

TEST(CudaSim, DivergentCollectiveThrows) {
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  EXPECT_THROW(launch(cfg,
                      [&](ThreadCtx& t) {
                        if (t.lane() < 16) {
                          t.ballot(true);
                        } else {
                          t.any(true);  // mismatched collective kind
                        }
                      }),
               Error);
}

TEST(CudaSim, PartialWarpExitBeforeCollectiveDeadlocks) {
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  // Lanes 0-15 exit; lanes 16-31 ballot.  Live-lane semantics let this
  // complete (the sim resolves it like independent-thread-scheduling HW).
  u32 bal = 0;
  launch(cfg, [&](ThreadCtx& t) {
    if (t.lane() < 16) return;
    const u32 b = t.ballot(true);
    if (t.lane() == 16) bal = b;
  });
  EXPECT_EQ(bal, 0xffff0000u);
}

TEST(CudaSim, GlobalTrafficCounters) {
  std::vector<u32> data(1024, 7);
  std::vector<u32> out(1024);
  LaunchConfig cfg;
  cfg.grid = Dim3{4};
  cfg.block = Dim3{256};
  const CostSheet cost = launch(cfg, [&](ThreadCtx& t) {
    const size_t i = t.block_idx.x * 256 + t.linear_tid();
    t.gstore(&out[i], t.gload(&data[i]) + 1);
  });
  EXPECT_EQ(cost.global_bytes_read, 1024u * 4);
  EXPECT_EQ(cost.global_bytes_written, 1024u * 4);
  EXPECT_EQ(cost.kernel_launches, 1u);
  for (const u32 v : out) EXPECT_EQ(v, 8u);
}

TEST(CudaSim, BankConflictAccounting) {
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};

  // Conflict-free: lane i touches word i (distinct banks).
  const CostSheet free_cost = launch(cfg, [&](ThreadCtx& t) {
    t.shared_access(t.lane());
  });
  EXPECT_EQ(free_cost.shared_transactions, 1u);

  // 32-way conflict: lane i touches word 32*i (all bank 0).
  const CostSheet conflict_cost = launch(cfg, [&](ThreadCtx& t) {
    t.shared_access(t.lane() * 32);
  });
  EXPECT_EQ(conflict_cost.shared_transactions, 32u);

  // Broadcast: all lanes touch the same word — one transaction.
  const CostSheet bcast_cost = launch(cfg, [&](ThreadCtx& t) {
    t.shared_access(5);
  });
  EXPECT_EQ(bcast_cost.shared_transactions, 1u);
}

TEST(CudaSim, PaddedStrideRemovesColumnConflicts) {
  // The §3.3 claim in miniature: column access at stride 32 conflicts
  // 32-way, stride 33 is conflict-free.
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  const CostSheet unpadded = launch(cfg, [&](ThreadCtx& t) {
    t.shared_access(t.lane() * 32 + 7);
  });
  const CostSheet padded = launch(cfg, [&](ThreadCtx& t) {
    t.shared_access(t.lane() * 33 + 7);
  });
  EXPECT_EQ(unpadded.shared_transactions, 32u);
  EXPECT_EQ(padded.shared_transactions, 1u);
}

TEST(DeviceModel, RooflineBehaviour) {
  const DeviceModel a100(DeviceSpec::a100());
  CostSheet mem;
  mem.global_bytes_read = 1u << 30;
  CostSheet ops = mem;
  ops.thread_ops = u64{1} << 40;  // absurdly compute-heavy
  EXPECT_GT(a100.seconds(ops), a100.seconds(mem));

  CostSheet launch_only;
  launch_only.kernel_launches = 100;
  EXPECT_NEAR(a100.seconds(launch_only), 100 * 5e-6, 1e-9);
}

TEST(DeviceModel, A100OutpacesA4000OnMemoryBoundWork) {
  CostSheet mem;
  mem.global_bytes_read = 1u << 30;
  const DeviceModel a100(DeviceSpec::a100());
  const DeviceModel a4000(DeviceSpec::a4000());
  EXPECT_LT(a100.seconds(mem), a4000.seconds(mem));
  EXPECT_NEAR(a4000.seconds(mem) / a100.seconds(mem), 700.0 / 250.0, 0.01);
}

TEST(DeviceModel, SerialPhaseIsAdditive) {
  const DeviceModel a100(DeviceSpec::a100());
  CostSheet c;
  c.serial_ns = 1e6;
  EXPECT_NEAR(a100.seconds(c), 1e-3, 1e-12);
}

TEST(CostSheet, SumAggregates) {
  CostSheet a, b;
  a.kernel_launches = 1;
  a.global_bytes_read = 10;
  b.kernel_launches = 2;
  b.global_bytes_written = 20;
  b.serial_ns = 5;
  const CostSheet total = sum({a, b}, "total");
  EXPECT_EQ(total.kernel_launches, 3u);
  EXPECT_EQ(total.global_bytes(), 30u);
  EXPECT_DOUBLE_EQ(total.serial_ns, 5.0);
  EXPECT_EQ(total.name, "total");
}

}  // namespace
}  // namespace fz::cudasim
