#include "common/error.hpp"
#include <gtest/gtest.h>

#include "baselines/compressor.hpp"

#include "cudasim/device_model.hpp"
#include "baselines/cusz.hpp"
#include "baselines/cuszx.hpp"
#include "baselines/mgard.hpp"
#include "baselines/szomp.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

namespace fz::bench {
namespace {

Field test_field(Dataset ds = Dataset::Hurricane) {
  return generate_field(ds, scaled_dims(ds, 0.08), 11);
}

// ---- error-bound invariant for every error-bounded baseline ------------------

struct BoundCase {
  const char* which;
  double rel_eb;
};

class BaselineBound : public ::testing::TestWithParam<BoundCase> {};

std::unique_ptr<GpuCompressor> make_by_name(const std::string& which) {
  if (which == "cusz") return make_cusz();
  if (which == "cuszx") return make_cuszx();
  if (which == "mgard") return make_mgard();
  if (which == "fzgpu") return make_fzgpu();
  return nullptr;
}

TEST_P(BaselineBound, ReconstructionWithinBound) {
  const auto [which, rel_eb] = GetParam();
  const auto comp = make_by_name(which);
  ASSERT_NE(comp, nullptr);
  const Field f = test_field();
  const double abs_eb = rel_eb * f.value_range();
  const RunResult r = comp->run(f, rel_eb);
  ASSERT_EQ(r.reconstructed.size(), f.count());
  EXPECT_TRUE(error_bounded(f.values(), r.reconstructed, abs_eb))
      << which << " eb=" << rel_eb;
  EXPECT_GT(r.ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, BaselineBound,
    ::testing::Values(BoundCase{"fzgpu", 1e-2}, BoundCase{"fzgpu", 1e-4},
                      BoundCase{"cusz", 1e-2}, BoundCase{"cusz", 1e-4},
                      BoundCase{"cuszx", 1e-2}, BoundCase{"cuszx", 1e-4},
                      BoundCase{"mgard", 1e-2}, BoundCase{"mgard", 1e-4}),
    [](const auto& info) {
      return std::string(info.param.which) + "_" +
             (info.param.rel_eb == 1e-2 ? "eb1e2" : "eb1e4");
    });

// ---- algorithm-specific characteristics ---------------------------------------

TEST(Cusz, SamePsnrAsFzGpuAtSameBound) {
  // Both share the dual-quantization error control (paper §4.3: "their
  // PSNR is the same when we use the same error bound").
  const Field f = test_field();
  const auto fzgpu = make_fzgpu();
  const auto cusz = make_cusz();
  const double eb = 1e-3;
  const auto a = distortion(f.values(), fzgpu->run(f, eb).reconstructed);
  const auto b = distortion(f.values(), cusz->run(f, eb).reconstructed);
  EXPECT_NEAR(a.psnr_db, b.psnr_db, 0.2);
}

TEST(Cusz, NcbVariantOnlyChangesCost) {
  const Field f = test_field();
  const auto full = make_cusz(true)->run(f, 1e-3);
  const auto ncb = make_cusz(false)->run(f, 1e-3);
  EXPECT_EQ(full.compressed_bytes, ncb.compressed_bytes);
  double full_fixed = 0, ncb_fixed = 0;
  for (const auto& c : full.compression_costs) full_fixed += c.fixed_ns;
  for (const auto& c : ncb.compression_costs) ncb_fixed += c.fixed_ns;
  EXPECT_GT(full_fixed, ncb_fixed);
}

TEST(Cuszx, ConstantBlocksCollapse) {
  Field f;
  f.dataset = "synthetic";
  f.name = "const";
  f.dims = Dims{128 * 256};
  f.data.assign(f.dims.count(), 7.25f);
  const auto r = make_cuszx()->run(f, 1e-3);
  // One float + tag per 128-value block.
  EXPECT_GT(r.ratio(), 80.0);
  for (const f32 v : r.reconstructed) EXPECT_EQ(v, 7.25f);
}

TEST(Cuszx, LowerRatioThanFzOnSmoothData) {
  // Paper §4.3: FZ-GPU ~2.4x higher ratio than cuSZx on average — cuSZx
  // only removes block-wise redundancy.
  const Field f = test_field(Dataset::CESM);
  const double eb = 1e-3;
  const auto fz = make_fzgpu()->run(f, eb);
  const auto szx = make_cuszx()->run(f, eb);
  EXPECT_GT(fz.ratio(), szx.ratio());
}

TEST(Cuszx, FasterThanFzInModel) {
  // Paper §4.4: cuSZx compression throughput ~1.5x FZ-GPU.
  const Field f = test_field(Dataset::CESM);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fz = make_fzgpu()->run(f, 1e-3);
  const auto szx = make_cuszx()->run(f, 1e-3);
  double t_fz = 0, t_szx = 0;
  for (const auto& c : fz.compression_costs) t_fz += a100.seconds(c);
  for (const auto& c : szx.compression_costs) t_szx += a100.seconds(c);
  EXPECT_LT(t_szx, t_fz);
}

TEST(Mgard, RefusesOneDimensionalData) {
  const auto mgard = make_mgard();
  Field f;
  f.dims = Dims{1000};
  f.data.assign(1000, 1.0f);
  EXPECT_FALSE(mgard->supports(f));
  EXPECT_THROW(mgard->run(f, 1e-3), Error);
}

TEST(Mgard, OverPreservesDistortion) {
  // Paper §4.3: MGARD has higher PSNR than others at the same nominal eb.
  const Field f = test_field();
  const double eb = 1e-3;
  const auto mg = distortion(f.values(), make_mgard()->run(f, eb).reconstructed);
  const auto fz = distortion(f.values(), make_fzgpu()->run(f, eb).reconstructed);
  EXPECT_GT(mg.psnr_db, fz.psnr_db);
  EXPECT_LE(mg.max_abs_error, eb * f.value_range() * (1 + 1e-6));
}

TEST(Mgard, SerialDeflatePhaseDominatesModelTime) {
  // Large enough that the host DEFLATE outweighs the kernel launches.
  const Field f = generate_field(Dataset::Hurricane,
                                 scaled_dims(Dataset::Hurricane, 0.25), 11);
  const auto r = make_mgard()->run(f, 1e-3);
  double serial = 0, total = 0;
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  for (const auto& c : r.compression_costs) {
    serial += c.serial_ns * 1e-9;
    total += a100.seconds(c);
  }
  EXPECT_GT(serial / total, 0.5);
}

TEST(AllCompressors, FactoryProducesPaperLineup) {
  const auto all = make_all_compressors();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0]->name(), "FZ-GPU");
  EXPECT_EQ(all[1]->name(), "cuSZ");
  EXPECT_EQ(all[2]->name(), "cuSZ-ncb");
  EXPECT_EQ(all[3]->name(), "cuZFP");
  EXPECT_EQ(all[4]->name(), "cuSZx");
  EXPECT_EQ(all[5]->name(), "MGARD-GPU");
}

// ---- CPU baselines -------------------------------------------------------------

TEST(CpuBaselines, FzOmpRoundTripsWithTiming) {
  const Field f = test_field(Dataset::CESM);
  const RunResult r = run_fz_omp(f, 1e-3, 1);
  EXPECT_TRUE(error_bounded(f.values(), r.reconstructed, 1e-3 * f.value_range()));
  EXPECT_GT(r.native_compress_seconds, 0.0);
  EXPECT_GT(r.native_decompress_seconds, 0.0);
}

TEST(CpuBaselines, SzOmpRoundTripsWithTiming) {
  const Field f = test_field(Dataset::CESM);
  const RunResult r = run_sz_omp(f, 1e-3, 1);
  EXPECT_TRUE(error_bounded(f.values(), r.reconstructed, 1e-3 * f.value_range()));
  EXPECT_GT(r.native_compress_seconds, 0.0);
  EXPECT_GT(r.ratio(), 1.0);
}

}  // namespace
}  // namespace fz::bench
