#include "common/error.hpp"
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/tables.hpp"

namespace fz::bench {
namespace {

TEST(Harness, PaperErrorBounds) {
  const auto& ebs = paper_error_bounds();
  ASSERT_EQ(ebs.size(), 5u);
  EXPECT_DOUBLE_EQ(ebs.front(), 1e-2);
  EXPECT_DOUBLE_EQ(ebs.back(), 1e-4);
  for (size_t i = 1; i < ebs.size(); ++i) EXPECT_LT(ebs[i], ebs[i - 1]);
}

TEST(Harness, MeasureFillsAllMetrics) {
  // Big enough that kernel-launch latency does not dominate the model.
  const auto fields = evaluation_fields(0.15);
  const auto fz = make_fzgpu();
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const Measurement m = measure(*fz, fields[1], 1e-3, a100, /*ssim=*/true);
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.compressor, "FZ-GPU");
  EXPECT_EQ(m.dataset, "CESM");
  EXPECT_GT(m.ratio, 1.0);
  EXPECT_GT(m.psnr_db, 40.0);
  EXPECT_GT(m.ssim, 0.5);
  EXPECT_GT(m.compress_seconds, 0.0);
  EXPECT_GT(m.decompress_seconds, 0.0);
  EXPECT_GT(m.throughput_gbps, 1.0);
  EXPECT_NEAR(m.bitrate, 32.0 / m.ratio, 1e-9);
}

TEST(Harness, MeasureFlagsUnsupportedCombos) {
  const auto mgard = make_mgard();
  const auto fields = evaluation_fields(0.05);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  // fields[0] is 1-D HACC: MGARD must bail out gracefully.
  const Measurement m = measure(*mgard, fields[0], 1e-3, a100);
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.note.empty());
}

TEST(Harness, CuzfpPsnrMatchingConverges) {
  const auto fields = evaluation_fields(0.05);
  const auto fz = make_fzgpu();
  const auto zfp = make_cuzfp();
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const Measurement target = measure(*fz, fields[1], 1e-3, a100);
  const auto matched = match_cuzfp_psnr(*zfp, fields[1], target.psnr_db, a100);
  ASSERT_TRUE(matched.has_value());
  EXPECT_NEAR(matched->psnr_db, target.psnr_db, 3.0);
  EXPECT_EQ(matched->compressor, "cuZFP");
}

TEST(Harness, CuzfpMatchingReportsFailureForAbsurdTargets) {
  const auto fields = evaluation_fields(0.05);
  const auto zfp = make_cuzfp();
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  // No swept bitrate reaches 10000 dB (mirrors the paper's missing bars on
  // Nyx/RTM at 1e-2 / 5e-3).
  EXPECT_FALSE(match_cuzfp_psnr(*zfp, fields[1], 10000.0, a100).has_value());
}

TEST(Harness, OverallThroughputFormula) {
  // T = ((BW*CR)^-1 + T_c^-1)^-1 — paper §4.6.
  EXPECT_NEAR(overall_throughput_gbps(11.4, 10.0, 114.0), 57.0, 1e-9);
  // High ratio pushes the limit toward the compression throughput.
  EXPECT_NEAR(overall_throughput_gbps(11.4, 1e9, 100.0), 100.0, 0.01);
  // Ratio 1 degenerates toward the link bandwidth.
  EXPECT_LT(overall_throughput_gbps(11.4, 1.0, 1e9), 11.4 + 1e-6);
  EXPECT_THROW(overall_throughput_gbps(0, 1, 1), Error);
}

TEST(Harness, EvaluationFieldsApplyHaccLogTransform) {
  const auto fields = evaluation_fields(0.05);
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[0].dataset, "HACC");
  EXPECT_NE(fields[0].name.find("(log)"), std::string::npos);
}

TEST(Tables, AlignedOutputAndCsv) {
  Table t({"a", "bb", "ccc"});
  t.add_row({"1", "2", "3"});
  t.add_row({"hello", "x", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| hello |"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb,ccc\n1,2,3\nhello,x,y\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Tables, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Tables, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(21.33), "21.3x");
  EXPECT_EQ(fmt_db(86.127), "86.1");
}

}  // namespace
}  // namespace fz::bench
