#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "datasets/generators.hpp"
#include "datasets/loader.hpp"

namespace fz {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return std::string("/tmp/fz_io_test_") + name;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string tracked(const char* name) {
    cleanup_.push_back(path(name));
    return cleanup_.back();
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IoTest, F32RoundTrip) {
  const Field f = generate_field(Dataset::CESM, Dims{40, 30}, 1);
  const std::string p = tracked("a.f32");
  save_f32_file(p, f.values());
  const Field back = load_f32_file(p, f.dims, "restored");
  EXPECT_EQ(back.data, f.data);
  EXPECT_EQ(back.dims, f.dims);
  EXPECT_EQ(back.name, "restored");
}

TEST_F(IoTest, RejectsWrongSize) {
  const Field f = generate_field(Dataset::CESM, Dims{40, 30}, 2);
  const std::string p = tracked("b.f32");
  save_f32_file(p, f.values());
  EXPECT_THROW(load_f32_file(p, Dims{41, 30}), Error);
}

TEST_F(IoTest, RejectsMissingFile) {
  EXPECT_THROW(load_f32_file("/nonexistent/nope.f32", Dims{4}), Error);
  EXPECT_THROW(load_bytes("/nonexistent/nope.bin"), Error);
}

TEST_F(IoTest, BytesRoundTrip) {
  const std::vector<u8> payload{1, 2, 3, 250, 0, 7};
  const std::string p = tracked("c.bin");
  save_bytes(p, payload);
  EXPECT_EQ(load_bytes(p), payload);
}

TEST_F(IoTest, CompressedStreamSurvivesDisk) {
  // The end-to-end file workflow the CLI uses.
  const Field f = generate_field(Dataset::Nyx, Dims{24, 24, 24}, 3);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const std::string p = tracked("d.fz");
  save_bytes(p, c.bytes);
  const FzDecompressed d = fz_decompress(load_bytes(p));
  EXPECT_EQ(d.dims, f.dims);
  const FzDecompressed direct = fz_decompress(c.bytes);
  EXPECT_EQ(d.data, direct.data);
}

}  // namespace
}  // namespace fz
