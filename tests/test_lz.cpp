#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "substrate/lz77.hpp"

namespace fz {
namespace {

std::vector<u8> random_bytes(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next_u32());
  return v;
}

TEST(Lz77, RoundTripRandom) {
  const auto data = random_bytes(50000, 1);
  const auto comp = lz_compress(data);
  EXPECT_EQ(lz_decompress(comp, data.size()), data);
}

TEST(Lz77, RoundTripEmptyAndTiny) {
  for (const size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u}) {
    const auto data = random_bytes(n, 10 + n);
    const auto comp = lz_compress(data);
    EXPECT_EQ(lz_decompress(comp, n), data) << n;
  }
}

TEST(Lz77, CompressesRepeatedData) {
  std::vector<u8> data;
  for (int i = 0; i < 5000; ++i) data.push_back(static_cast<u8>(i % 17));
  const auto comp = lz_compress(data);
  EXPECT_LT(comp.size(), data.size() / 10);
  EXPECT_EQ(lz_decompress(comp, data.size()), data);
}

TEST(Lz77, CompressesAllZeros) {
  const std::vector<u8> zeros(100000, 0);
  const auto comp = lz_compress(zeros);
  EXPECT_LT(comp.size(), 2000u);
  EXPECT_EQ(lz_decompress(comp, zeros.size()), zeros);
}

TEST(Lz77, OverlappingMatchesDecodeCorrectly) {
  // "abcabcabc..." forces distance < length copies.
  std::vector<u8> data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<u8>("abc"[i % 3]));
  const auto comp = lz_compress(data);
  EXPECT_EQ(lz_decompress(comp, data.size()), data);
}

TEST(Lz77, MixedStructuredPayload) {
  // Alternating random and repeated sections, like real code streams.
  std::vector<u8> data;
  Rng rng(3);
  for (int section = 0; section < 20; ++section) {
    if (section % 2 == 0) {
      const auto r = random_bytes(997, 100 + section);
      data.insert(data.end(), r.begin(), r.end());
    } else {
      data.insert(data.end(), 2048, static_cast<u8>(section));
    }
  }
  const auto comp = lz_compress(data);
  EXPECT_LT(comp.size(), data.size());
  EXPECT_EQ(lz_decompress(comp, data.size()), data);
}

TEST(Lz77, RejectsTruncatedStream) {
  const auto data = random_bytes(10000, 4);
  auto comp = lz_compress(data);
  comp.resize(comp.size() / 2);
  EXPECT_THROW(lz_decompress(comp, data.size()), FormatError);
}

TEST(Lz77, RejectsBadDistance) {
  // A match token pointing before the start of output.
  // flags=0x01 (first token is a match), distance=5, length code=0.
  const std::vector<u8> bogus{0x01, 0x05, 0x00, 0x00};
  EXPECT_THROW(lz_decompress(bogus, 10), FormatError);
}

TEST(Lz77, SerialCostModelIsLinear) {
  EXPECT_DOUBLE_EQ(lz_match_serial_ns(6300), 1000.0);  // 6.3 GB/s
}

}  // namespace
}  // namespace fz
