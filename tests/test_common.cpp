#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/buffer.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fz {
namespace {

TEST(Dims, RankAndCount) {
  EXPECT_EQ(Dims{100}.rank(), 1);
  EXPECT_EQ((Dims{4, 5}.rank()), 2);
  EXPECT_EQ((Dims{4, 5, 6}.rank()), 3);
  EXPECT_EQ((Dims{4, 1, 1}.rank()), 1);
  EXPECT_EQ((Dims{4, 5, 6}.count()), 120u);
  EXPECT_EQ(Dims{7}.count(), 7u);
}

TEST(Dims, LinearIndexIsRowMajorXFastest) {
  const Dims d{4, 3, 2};
  EXPECT_EQ(d.linear(0, 0, 0), 0u);
  EXPECT_EQ(d.linear(1, 0, 0), 1u);
  EXPECT_EQ(d.linear(0, 1, 0), 4u);
  EXPECT_EQ(d.linear(0, 0, 1), 12u);
  EXPECT_EQ(d.linear(3, 2, 1), 23u);
}

TEST(Dims, ToString) {
  EXPECT_EQ(Dims{8}.to_string(), "8");
  EXPECT_EQ((Dims{8, 9}.to_string()), "8x9");
  EXPECT_EQ((Dims{8, 9, 10}.to_string()), "8x9x10");
}

TEST(ErrorBound, ResolveModes) {
  EXPECT_DOUBLE_EQ(ErrorBound::absolute(0.5).resolve(100.0), 0.5);
  EXPECT_DOUBLE_EQ(ErrorBound::relative(1e-3).resolve(100.0), 0.1);
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer b(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % AlignedBuffer::kAlignment, 0u);
  for (const u8 v : b.bytes()) EXPECT_EQ(v, 0);
}

TEST(AlignedBuffer, ResizePreservingKeepsPrefix) {
  AlignedBuffer b(16);
  for (size_t i = 0; i < 16; ++i) b.data()[i] = static_cast<u8>(i + 1);
  b.resize_preserving(32);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.data()[i], i + 1);
  for (size_t i = 16; i < 32; ++i) EXPECT_EQ(b.data()[i], 0);
  b.resize_preserving(8);
  EXPECT_EQ(b.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(b.data()[i], i + 1);
}

TEST(AlignedBuffer, CopyAndMove) {
  AlignedBuffer a(8);
  a.data()[3] = 42;
  AlignedBuffer b = a;
  EXPECT_EQ(b.data()[3], 42);
  b.data()[3] = 1;
  EXPECT_EQ(a.data()[3], 42);  // deep copy
  AlignedBuffer c = std::move(a);
  EXPECT_EQ(c.data()[3], 42);
}

TEST(AlignedBuffer, TypedViews) {
  AlignedBuffer b(16);
  auto u32s = b.as<u32>();
  ASSERT_EQ(u32s.size(), 4u);
  u32s[2] = 0xdeadbeef;
  EXPECT_EQ(b.as<u16>()[4], 0xbeef);
}

TEST(Bits, SignMagnitudeRoundTrip) {
  for (const i32 v : {0, 1, -1, 5000, -5000, 32766, -32766, 32767, -32767}) {
    EXPECT_EQ(sign_magnitude_decode(sign_magnitude_encode(v)), v) << v;
  }
}

TEST(Bits, SignMagnitudeSaturates) {
  EXPECT_EQ(sign_magnitude_decode(sign_magnitude_encode(40000)), 32767);
  EXPECT_EQ(sign_magnitude_decode(sign_magnitude_encode(-40000)), -32767);
  EXPECT_TRUE(sign_magnitude_saturates(32768));
  EXPECT_TRUE(sign_magnitude_saturates(-32768));
  EXPECT_FALSE(sign_magnitude_saturates(32767));
  EXPECT_FALSE(sign_magnitude_saturates(-32767));
}

TEST(Bits, SignMagnitudeSmallValuesHaveFewSetBits) {
  // The design rationale (§3.2): small negatives must not light up the
  // high bit planes the way two's complement does.
  EXPECT_EQ(popcount_u32(sign_magnitude_encode(-1)), 2);  // sign + 1 bit
  EXPECT_EQ(popcount_u32(static_cast<u32>(static_cast<u16>(i16{-1}))), 16);
}

TEST(Bits, ZigZag) {
  for (const i32 v : {0, 1, -1, 123456, -123456, INT32_MAX, INT32_MIN + 1}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Bits, RoundUpDivCeil) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(div_ceil(9, 8), 2u);
  EXPECT_EQ(div_ceil(16, 8), 2u);
}

TEST(Rng, DeterministicAndWellDistributed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());

  Rng r(123);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(99);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Parallel, ForCoversRangeOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), [&](size_t i) { hits[i]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  // Exceptions thrown inside OpenMP regions would call std::terminate
  // without the capture-and-rethrow in parallel_for; decoders depend on it.
  EXPECT_THROW(parallel_for(0, 1000,
                            [&](size_t i) {
                              if (i == 517) throw Error("boom");
                            }),
               Error);
}

TEST(Parallel, ChunksCoverRangeOnce) {
  std::vector<int> hits(1003, 0);
  parallel_chunks(hits.size(), 64, [&](size_t b, size_t e) {
    ASSERT_LE(e, hits.size());
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ChunksRejectZeroChunkSize) {
  // Regression: chunk == 0 used to divide by zero when computing the chunk
  // count; it must be a reported error instead.
  EXPECT_THROW(parallel_chunks(100, 0, [&](size_t, size_t) {}), Error);
  // count == 0 with a valid chunk stays a silent no-op.
  parallel_chunks(0, 64, [&](size_t, size_t) { FAIL(); });
}

TEST(Parallel, TasksCoverAllTasksWithBoundedWorkers) {
  constexpr size_t kTasks = 137;
  constexpr size_t kWorkers = 3;
  std::vector<int> hits(kTasks, 0);
  std::vector<std::atomic<int>> active(kWorkers);
  parallel_tasks(kTasks, kWorkers, [&](size_t task, size_t worker) {
    ASSERT_LT(worker, kWorkers);
    // Worker slots are exclusive: two tasks never share one concurrently.
    ASSERT_EQ(active[worker].fetch_add(1), 0);
    hits[task]++;
    active[worker].fetch_sub(1);
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, TasksSerialWhenOneWorker) {
  std::vector<size_t> order;
  parallel_tasks(10, 1, [&](size_t task, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, TasksPropagateExceptions) {
  EXPECT_THROW(parallel_tasks(100, 4,
                              [&](size_t task, size_t) {
                                if (task == 41) throw Error("boom");
                              }),
               Error);
}

TEST(Parallel, MinmaxMatchesSerialScan) {
  Rng rng(7);
  std::vector<f32> v(10001);
  for (auto& x : v) x = static_cast<f32>(rng.uniform(-50, 50));
  v[1234] = -100.0f;
  v[8888] = 175.5f;
  const auto [lo, hi] = parallel_minmax(std::span<const f32>{v});
  EXPECT_EQ(lo, -100.0f);
  EXPECT_EQ(hi, 175.5f);
  const auto [slo, shi] = parallel_minmax(std::span<const f32>{v.data(), 1});
  EXPECT_EQ(slo, v[0]);
  EXPECT_EQ(shi, v[0]);
  EXPECT_THROW(parallel_minmax(std::span<const f32>{}), Error);
}

TEST(Parallel, AllFiniteDetectsNaNAndInf) {
  std::vector<f64> v(4096, 1.5);
  EXPECT_TRUE(parallel_all_finite(std::span<const f64>{v}));
  v[4000] = std::numeric_limits<f64>::quiet_NaN();
  EXPECT_FALSE(parallel_all_finite(std::span<const f64>{v}));
  v[4000] = std::numeric_limits<f64>::infinity();
  EXPECT_FALSE(parallel_all_finite(std::span<const f64>{v}));
  EXPECT_TRUE(parallel_all_finite(std::span<const f64>{}));
}

}  // namespace
}  // namespace fz
