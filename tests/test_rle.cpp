#include <gtest/gtest.h>

#include "baselines/cusz.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"
#include "substrate/rle.hpp"

namespace fz {
namespace {

TEST(Rle, RoundTripRandom) {
  Rng rng(1);
  std::vector<u16> syms(20000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(8));
  const auto enc = rle_encode(syms);
  EXPECT_EQ(rle_decode(enc, syms.size()), syms);
}

TEST(Rle, RoundTripEdgeSizes) {
  for (const size_t n : {0u, 1u, 2u, 255u, 256u, 257u, 1000u}) {
    std::vector<u16> syms(n, 42);
    const auto enc = rle_encode(syms);
    EXPECT_EQ(rle_decode(enc, n), syms) << n;
  }
}

TEST(Rle, LongRunsCompressHard) {
  std::vector<u16> syms(100000, 512);  // one symbol throughout
  const auto enc = rle_encode(syms);
  // ceil(100000/256) records * 3 bytes.
  EXPECT_EQ(enc.size(), 391u * 3);
  EXPECT_EQ(rle_decode(enc, syms.size()), syms);
}

TEST(Rle, AlternatingSymbolsExpand) {
  std::vector<u16> syms(1000);
  for (size_t i = 0; i < syms.size(); ++i) syms[i] = i % 2;
  const auto enc = rle_encode(syms);
  EXPECT_EQ(enc.size(), 3000u);  // every record is a run of 1
}

TEST(Rle, EncodedBytesPredictsExactly) {
  Rng rng(2);
  std::vector<u16> syms(5000);
  u16 cur = 0;
  for (auto& s : syms) {
    if (rng.below(10) == 0) cur = static_cast<u16>(rng.below(1024));
    s = cur;
  }
  EXPECT_EQ(rle_encoded_bytes(syms), rle_encode(syms).size());
}

TEST(Rle, RejectsMalformedStreams) {
  std::vector<u16> syms(100, 7);
  auto enc = rle_encode(syms);
  EXPECT_THROW(rle_decode(enc, 50), FormatError);   // overruns expectation
  EXPECT_THROW(rle_decode(enc, 200), FormatError);  // incomplete
  enc.pop_back();
  EXPECT_THROW(rle_decode(enc, 100), FormatError);  // not multiple of 3
}

// ---- cuSZ-RLE baseline (reference [32]) --------------------------------------

TEST(CuszRle, RoundTripWithinBound) {
  using namespace bench;
  const Field f =
      generate_field(Dataset::RTM, scaled_dims(Dataset::RTM, 0.1), 21);
  const auto rle = make_cusz_rle();
  EXPECT_EQ(rle->name(), "cuSZ-RLE");
  const RunResult r = rle->run(f, 1e-2);
  EXPECT_TRUE(error_bounded(f.values(), r.reconstructed, 1e-2 * f.value_range()));
  EXPECT_GT(r.ratio(), 1.0);
}

TEST(CuszRle, BeatsHuffmanThroughputAtHighBound) {
  // The point of [32]: at high error bounds the codes are long zero runs,
  // so RLE reaches a similar ratio without Huffman's codebook + irregular
  // encode.
  using namespace bench;
  const Field f =
      generate_field(Dataset::RTM, scaled_dims(Dataset::RTM, 0.12), 22);
  const auto rle = make_cusz_rle();
  const auto huff = make_cusz(true);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const RunResult rr = rle->run(f, 5e-2);
  const RunResult rh = huff->run(f, 5e-2);
  double t_rle = 0, t_huff = 0;
  for (const auto& c : rr.compression_costs) t_rle += a100.seconds(c);
  for (const auto& c : rh.compression_costs) t_huff += a100.seconds(c);
  EXPECT_LT(t_rle, t_huff);
  // A usable fraction of Huffman's ratio: RLE only exploits exact runs,
  // and the in-band quantization dither of our synthetic field breaks
  // runs more than real RTM data does.
  EXPECT_GT(rr.ratio(), rh.ratio() * 0.25);
  EXPECT_GT(rr.ratio(), 4.0);
}

TEST(CuszRle, HuffmanStillWinsRatioAtTightBound) {
  // At tight bounds the codes are high-entropy; RLE degenerates while
  // Huffman keeps compressing — why [32] targets high-eb scenarios only.
  using namespace bench;
  const Field f = generate_field(Dataset::Hurricane,
                                 scaled_dims(Dataset::Hurricane, 0.1), 23);
  const auto rle = make_cusz_rle();
  const auto huff = make_cusz(true);
  EXPECT_LT(rle->run(f, 1e-4).ratio(), huff->run(f, 1e-4).ratio());
}

}  // namespace
}  // namespace fz
