#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datasets/generators.hpp"
#include "datasets/transforms.hpp"

namespace fz {
namespace {

class DatasetGen : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetGen, ProducesFiniteDataOfRequestedShape) {
  const Dataset ds = GetParam();
  const Dims dims = scaled_dims(ds, 0.06);
  const Field f = generate_field(ds, dims, 1);
  EXPECT_EQ(f.dims, dims);
  EXPECT_EQ(f.data.size(), dims.count());
  EXPECT_EQ(f.dataset, dataset_name(ds));
  for (const f32 v : f.data) ASSERT_TRUE(std::isfinite(v));
  EXPECT_GT(f.value_range(), 0.0);
}

TEST_P(DatasetGen, DeterministicInSeed) {
  const Dataset ds = GetParam();
  const Dims dims = scaled_dims(ds, 0.05);
  const Field a = generate_field(ds, dims, 9);
  const Field b = generate_field(ds, dims, 9);
  const Field c = generate_field(ds, dims, 10);
  EXPECT_EQ(a.data, b.data);
  EXPECT_NE(a.data, c.data);
}

TEST_P(DatasetGen, RankMatchesTable1) {
  const Dataset ds = GetParam();
  const DatasetInfo& info = dataset_info(ds);
  EXPECT_EQ(scaled_dims(ds, 0.1).rank(), info.full_dims.rank());
}

INSTANTIATE_TEST_SUITE_P(All, DatasetGen, ::testing::ValuesIn(all_datasets()),
                         [](const auto& info) {
                           return std::string(dataset_name(info.param));
                         });

TEST(DatasetCharacter, RtmHasManyExactZeros) {
  // Paper §4.3: "the RTM dataset contains many zero values".
  const Field f = generate_field(Dataset::RTM, scaled_dims(Dataset::RTM, 0.1), 2);
  size_t zeros = 0;
  for (const f32 v : f.data) zeros += v == 0.0f;
  EXPECT_GT(static_cast<double>(zeros) / f.count(), 0.3);
}

TEST(DatasetCharacter, HaccIsUnsmooth) {
  // Neighbouring particles are unrelated: first differences are comparable
  // to the full value range (Lorenzo-hostile, §4.5).
  const Field f = generate_field(Dataset::HACC, Dims{40000}, 3);
  double mean_abs_diff = 0;
  for (size_t i = 1; i < f.count(); ++i)
    mean_abs_diff += std::fabs(static_cast<double>(f.data[i]) - f.data[i - 1]);
  mean_abs_diff /= static_cast<double>(f.count() - 1);
  EXPECT_GT(mean_abs_diff, 0.05 * f.value_range());
}

TEST(DatasetCharacter, CesmIsSmooth) {
  const Field f = generate_field(Dataset::CESM, scaled_dims(Dataset::CESM, 0.1), 4);
  double mean_abs_diff = 0;
  for (size_t i = 1; i < f.count(); ++i)
    mean_abs_diff += std::fabs(static_cast<double>(f.data[i]) - f.data[i - 1]);
  mean_abs_diff /= static_cast<double>(f.count() - 1);
  EXPECT_LT(mean_abs_diff, 0.02 * f.value_range());
}

TEST(DatasetCharacter, NyxHasHighDynamicRange) {
  const Field f = generate_field(Dataset::Nyx, scaled_dims(Dataset::Nyx, 0.08), 5);
  EXPECT_GT(f.max_value() / std::max(f.min_value(), 1e-30), 100.0);
  EXPECT_GT(f.min_value(), 0.0);  // densities are positive
}

TEST(DatasetInfoTable, MatchesPaperTable1) {
  EXPECT_EQ(dataset_info(Dataset::HACC).full_dims, Dims{280953867});
  EXPECT_EQ(dataset_info(Dataset::CESM).full_dims, (Dims{3600, 1800}));
  EXPECT_EQ(dataset_info(Dataset::Hurricane).full_dims, (Dims{500, 500, 100}));
  EXPECT_EQ(dataset_info(Dataset::Nyx).full_dims, (Dims{512, 512, 512}));
  EXPECT_EQ(dataset_info(Dataset::RTM).full_dims, (Dims{449, 449, 235}));
  EXPECT_EQ(all_datasets().size(), 6u);
}

TEST(DatasetVariants, DistinctFieldsDiffer) {
  const Dims d = scaled_dims(Dataset::CESM, 0.05);
  const Field a = generate_field_variant(Dataset::CESM, "RELHUM", d, 1);
  const Field b = generate_field_variant(Dataset::CESM, "CLDICE", d, 1);
  EXPECT_NE(a.data, b.data);
  EXPECT_EQ(b.name, "CLDICE");
  // CLDICE-like cloud field is sparse and non-negative.
  size_t zeros = 0;
  for (const f32 v : b.data) {
    EXPECT_GE(v, 0.0f);
    zeros += v == 0.0f;
  }
  EXPECT_GT(zeros, b.count() / 10);
}

TEST(DatasetVariants, UnknownVariantThrows) {
  EXPECT_THROW(generate_field_variant(Dataset::Nyx, "nope", Dims{8, 8, 8}, 1),
               Error);
}

TEST(Transforms, LogTransformRoundTrip) {
  Field f = generate_field(Dataset::HACC, Dims{10000}, 6);
  const std::vector<f32> orig = f.data;
  log_transform(f);
  for (const f32 v : f.data) ASSERT_TRUE(std::isfinite(v));
  std::vector<f32> back = f.data;
  exp_transform(back);
  for (size_t i = 0; i < back.size(); ++i)
    EXPECT_NEAR(back[i], orig[i], std::fabs(orig[i]) * 1e-5 + 1e-6);
}

TEST(Transforms, LogAbsBoundRealizesPointwiseRelativeBound) {
  // |log x' - log x| <= log(1+r) implies x'/x within [1/(1+r), 1+r].
  const double rel = 1e-2;
  const double abs_eb = log_abs_bound_for_relative(rel);
  Field f = generate_field(Dataset::HACC, Dims{5000}, 7);
  const std::vector<f32> orig = f.data;
  log_transform(f);
  // Worst-case quantization at the bound:
  std::vector<f32> recon = f.data;
  for (size_t i = 0; i < recon.size(); ++i)
    recon[i] += static_cast<f32>((i % 2 ? 1 : -1) * abs_eb);
  exp_transform(recon);
  for (size_t i = 0; i < recon.size(); ++i) {
    const double ratio = static_cast<double>(recon[i]) / orig[i];
    EXPECT_LE(ratio, (1 + rel) * (1 + 1e-5));
    EXPECT_GE(ratio, 1.0 / (1 + rel) * (1 - 1e-5));
  }
}

TEST(Transforms, SliceZExtractsPlane) {
  const Field f = generate_field(Dataset::Hurricane, Dims{16, 12, 5}, 8);
  const Field s = slice_z(f, 3);
  EXPECT_EQ(s.dims, (Dims{16, 12}));
  for (size_t y = 0; y < 12; ++y)
    for (size_t x = 0; x < 16; ++x)
      EXPECT_EQ(s.data[s.dims.linear(x, y)], f.data[f.dims.linear(x, y, 3)]);
  EXPECT_THROW(slice_z(f, 5), Error);
}

TEST(BenchmarkSuite, OneFieldPerDataset) {
  const auto suite = benchmark_suite(0.05);
  ASSERT_EQ(suite.size(), 6u);
  std::set<std::string> names;
  for (const auto& f : suite) names.insert(f.dataset);
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace fz
