// Schedule independence of the tile-parallel fused pipeline (ISSUE PR5):
// the strip-parallel kernel must produce byte-identical output to the
// serial fused pass for EVERY worker count, dtype, SIMD tier and rank —
// the halo re-prequantization makes each strip's stencil inputs pointwise
// recomputations of the exact values the serial pass carried, so the
// partition never shows in the stream.  Also pins the plan's determinism,
// the per-strip telemetry spans, and Codec-level stream equality across
// fused_workers settings (including the fused_serial_tiles reference
// path).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/bitshuffle.hpp"
#include "core/codec.hpp"
#include "core/kernels_simd.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {
namespace {

std::vector<SimdLevel> levels_under_test() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_supported() >= SimdLevel::SSE2) levels.push_back(SimdLevel::SSE2);
  if (simd_supported() >= SimdLevel::AVX2) levels.push_back(SimdLevel::AVX2);
  return levels;
}

// Multi-tile shapes for every rank, chosen so fused_parallel_plan actually
// yields several strips (the clamp caps strips at count / (4 * halo
// reach), which rules out tiny 3-D fields).  2049 exercises the padded
// final tile.
const Dims kDims[] = {Dims{5000},       Dims{2049},       Dims{64, 256},
                      Dims{96, 40},     Dims{24, 20, 20}, Dims{32, 24, 24}};

template <typename T>
std::vector<T> field(Dims dims, u64 seed) {
  Rng rng(seed);
  const size_t n = dims.count();
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % std::max<size_t>(dims.x, 1));
    v[i] = static_cast<T>(40.0 * std::sin(x * 0.11) +
                          10.0 * std::cos(static_cast<double>(i) * 0.003) +
                          rng.uniform(-0.5, 0.5));
  }
  return v;
}

struct FusedOut {
  std::vector<u32> shuffled;
  std::vector<u8> byte_flags;
  std::vector<u8> bit_flags;
  FusedTileResult res;
};

template <typename T>
FusedOut run_serial(std::span<const T> data, Dims dims, double eb,
                    SimdLevel level) {
  const size_t words = round_up(data.size(), kCodesPerTile) / 2;
  FusedOut o;
  o.shuffled.assign(words, 0xdeadbeefu);
  o.byte_flags.assign(words / kBlockWords, 0xcd);
  o.bit_flags.assign(div_ceil(o.byte_flags.size(), 8), 0xcd);
  std::vector<i64> row(fused_row_scratch_elems(dims), -1);
  std::vector<i64> plane(fused_plane_scratch_elems(dims), -1);
  o.res = fused_quant_shuffle_mark(data, dims, eb, false, o.shuffled,
                                   o.byte_flags, o.bit_flags, row, plane,
                                   level);
  return o;
}

template <typename T>
FusedOut run_parallel(std::span<const T> data, Dims dims, double eb,
                      size_t workers, SimdLevel level,
                      telemetry::Sink* sink = nullptr) {
  const size_t words = round_up(data.size(), kCodesPerTile) / 2;
  FusedOut o;
  o.shuffled.assign(words, 0xdeadbeefu);
  o.byte_flags.assign(words / kBlockWords, 0xcd);
  o.bit_flags.assign(div_ceil(o.byte_flags.size(), 8), 0xcd);
  const FusedParallelPlan plan = fused_parallel_plan(dims, workers);
  std::vector<i64> scratch(plan.scratch_elems, -1);
  o.res = fused_quant_shuffle_mark_parallel(data, dims, eb, false, o.shuffled,
                                            o.byte_flags, o.bit_flags, scratch,
                                            plan, level, sink);
  return o;
}

template <typename T>
void check_schedule_independent(Dims dims, double eb, u64 seed) {
  const auto data = field<T>(dims, seed);
  const std::span<const T> span{data};
  for (const SimdLevel level : levels_under_test()) {
    const FusedOut want = run_serial(span, dims, eb, level);
    for (const size_t workers : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      const FusedOut got = run_parallel(span, dims, eb, workers, level);
      const std::string where = std::string(simd_level_name(level)) + " dims " +
                                std::to_string(dims.x) + "x" +
                                std::to_string(dims.y) + "x" +
                                std::to_string(dims.z) + " workers " +
                                std::to_string(workers);
      ASSERT_EQ(want.shuffled, got.shuffled) << where;
      ASSERT_EQ(want.byte_flags, got.byte_flags) << where;
      ASSERT_EQ(want.bit_flags, got.bit_flags) << where;
      EXPECT_EQ(want.res.anchor, got.res.anchor) << where;
      EXPECT_EQ(want.res.saturated, got.res.saturated) << where;
    }
  }
}

TEST(FusedParallel, ByteIdenticalToSerialF32) {
  for (const Dims dims : kDims)
    check_schedule_independent<f32>(dims, 1e-3, 101 + dims.count());
}

TEST(FusedParallel, ByteIdenticalToSerialF64) {
  for (const Dims dims : kDims)
    check_schedule_independent<f64>(dims, 1e-3, 301 + dims.count());
}

TEST(FusedParallel, ByteIdenticalWithSaturationAndCoarseBound) {
  // A coarse bound drives most codes to zero (exercises zero blocks); a
  // needle of huge values exercises the saturation counter across strips.
  const Dims dims{64, 256};
  auto data = field<f32>(dims, 77);
  data[5] = 4.0e9f;
  data[9000] = -3.9e9f;
  data[dims.count() - 1] = 2.5e9f;
  const std::span<const f32> span{data};
  for (const SimdLevel level : levels_under_test()) {
    const FusedOut want = run_serial(span, dims, 20.0, level);
    EXPECT_GT(want.res.saturated, 0u);
    for (const size_t workers : {size_t{2}, size_t{8}}) {
      const FusedOut got = run_parallel(span, dims, 20.0, workers, level);
      ASSERT_EQ(want.shuffled, got.shuffled) << simd_level_name(level);
      EXPECT_EQ(want.res.saturated, got.res.saturated);
      EXPECT_EQ(want.res.anchor, got.res.anchor);
    }
  }
}

TEST(FusedParallel, PlanIsDeterministicAndClamped) {
  for (const Dims dims : kDims) {
    for (const size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                                 size_t{8}, size_t{64}}) {
      const FusedParallelPlan a = fused_parallel_plan(dims, workers);
      const FusedParallelPlan b = fused_parallel_plan(dims, workers);
      EXPECT_EQ(a.strips, b.strips);
      EXPECT_EQ(a.scratch_elems, b.scratch_elems);
      EXPECT_EQ(a.halo_elems, b.halo_elems);

      EXPECT_GE(a.strips, 1u);
      EXPECT_LE(a.strips, div_ceil(dims.count(), kCodesPerTile));
      if (workers == 1) {
        EXPECT_EQ(a.strips, 1u);
        EXPECT_EQ(a.halo_elems, 0u);
      }
      if (a.strips == 1) {
        EXPECT_EQ(a.halo_elems, 0u);
      }
      EXPECT_GT(a.scratch_elems, 0u);
      // The clamp keeps the halo recompute a small fraction of the work.
      EXPECT_LE(a.halo_elems * 4, dims.count());
    }
  }
  // Tiny inputs never split.
  EXPECT_EQ(fused_parallel_plan(Dims{100}, 8).strips, 1u);
  EXPECT_EQ(fused_parallel_plan(Dims{10, 10, 3}, 8).strips, 1u);
}

TEST(FusedParallel, EmitsOneTelemetrySpanPerStrip) {
  const Dims dims{64, 256};
  const auto data = field<f32>(dims, 55);
  const size_t workers = 3;
  const FusedParallelPlan plan = fused_parallel_plan(dims, workers);
  ASSERT_GT(plan.strips, 1u);

  telemetry::Sink sink;
  run_parallel(std::span<const f32>{data}, dims, 1e-3, workers,
               SimdLevel::Scalar, &sink);

  size_t spans = 0;
  std::vector<bool> strip_seen(plan.strips, false);
  u64 halo_total = 0, bytes_total = 0;
  for (const telemetry::TraceEvent& ev : sink.snapshot()) {
    if (std::string_view{ev.name} != "fused-strip") continue;
    ++spans;
    double strip = -1, halo = -1, bytes = -1;
    for (u32 i = 0; i < ev.n_args; ++i) {
      const std::string_view key{ev.args[i].key};
      if (key == "strip") strip = ev.args[i].value;
      if (key == "halo_elems") halo = ev.args[i].value;
      if (key == "bytes") bytes = ev.args[i].value;
    }
    ASSERT_GE(strip, 0.0) << "span missing strip arg";
    ASSERT_GE(halo, 0.0) << "span missing halo_elems arg";
    ASSERT_GT(bytes, 0.0) << "span missing bytes arg";
    strip_seen.at(static_cast<size_t>(strip)) = true;
    halo_total += static_cast<u64>(halo);
    bytes_total += static_cast<u64>(bytes);
  }
  EXPECT_EQ(spans, plan.strips);
  for (size_t s = 0; s < plan.strips; ++s)
    EXPECT_TRUE(strip_seen[s]) << "no span for strip " << s;
  // Every strip after the first recomputes at least its predecessor row;
  // plan.halo_elems is the worst-case bound the clamp uses.
  EXPECT_GE(halo_total, (plan.strips - 1) * dims.x);
  EXPECT_LE(halo_total, plan.halo_elems);
  EXPECT_GE(bytes_total, dims.count() * sizeof(f32));
}

TEST(FusedParallel, CodecStreamsIdenticalAcrossWorkerSettings) {
  const Dims dims{64, 256};
  const auto data = field<f32>(dims, 91);

  auto compress_with = [&](size_t workers, bool serial_tiles) {
    FzParams params;
    params.eb = ErrorBound::absolute(1e-3);
    params.fused_workers = workers;
    params.fused_serial_tiles = serial_tiles;
    Codec codec(params);
    return codec.compress(data, dims).bytes;
  };

  const std::vector<u8> want = compress_with(1, /*serial_tiles=*/true);
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                               size_t{8}})
    EXPECT_EQ(want, compress_with(workers, false)) << "workers " << workers;

  // Decompression's chunked scans must also be schedule-independent: the
  // same stream reconstructs to identical bytes for every worker count.
  FzParams dp;
  dp.eb = ErrorBound::absolute(1e-3);
  dp.fused_workers = 1;
  Codec ref(dp);
  const std::vector<f32> base = ref.decompress(want).data;
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{3}, size_t{8}}) {
    FzParams p;
    p.eb = ErrorBound::absolute(1e-3);
    p.fused_workers = workers;
    Codec codec(p);
    const FzDecompressed out = codec.decompress(want);
    ASSERT_EQ(base.size(), out.data.size());
    for (size_t i = 0; i < base.size(); ++i)
      ASSERT_EQ(std::bit_cast<u32>(base[i]), std::bit_cast<u32>(out.data[i]))
          << "workers " << workers << " elem " << i;
  }
  for (size_t i = 0; i < base.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(base[i]) - data[i]), 1e-3 + 1e-7);
}

TEST(FusedParallel, F64CodecStreamsIdenticalAcrossWorkerSettings) {
  const Dims dims{24, 20, 20};
  const auto data = field<f64>(dims, 13);

  auto compress_with = [&](size_t workers, bool serial_tiles) {
    FzParams params;
    params.eb = ErrorBound::absolute(1e-4);
    params.fused_workers = workers;
    params.fused_serial_tiles = serial_tiles;
    Codec codec(params);
    return codec.compress(data, dims).bytes;
  };

  const std::vector<u8> want = compress_with(1, /*serial_tiles=*/true);
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}})
    EXPECT_EQ(want, compress_with(workers, false)) << "workers " << workers;
}

}  // namespace
}  // namespace fz
