// fz::Reader — random-access slices must be byte-identical to full-stream
// decompression for every worker count and cache budget, the cache/prefetch
// machinery must actually engage (counters), and the building blocks
// (ThreadPool, ChunkCache, Prefetcher) hold their contracts in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/chunked.hpp"
#include "datasets/generators.hpp"
#include "reader/cache.hpp"
#include "reader/prefetcher.hpp"
#include "reader/reader.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {
namespace {

struct Fixture {
  Field field;
  std::vector<u8> container;
  std::vector<f32> full;  ///< reference: full-stream decompress

  static Fixture make(Dims dims, size_t chunks, unsigned version = 2,
                      u64 seed = 21) {
    Fixture fx{generate_field(Dataset::Hurricane, dims, seed), {}, {}};
    ChunkedParams params;
    params.num_chunks = chunks;
    params.container_version = version;
    fx.container = fz_compress_chunked(fx.field.values(), dims, params).bytes;
    fx.full = fz_decompress_chunked(fx.container).data;
    return fx;
  }
};

/// The ground truth a slice read must reproduce exactly: the same region
/// copied out of the full decompress.
std::vector<f32> reference_slice(const std::vector<f32>& full, Dims d,
                                 const Slice& s) {
  std::vector<f32> out(s.count());
  for (size_t z = 0; z < s.nz; ++z)
    for (size_t y = 0; y < s.ny; ++y)
      for (size_t x = 0; x < s.nx; ++x)
        out[(z * s.ny + y) * s.nx + x] =
            full[d.linear(s.x + x, s.y + y, s.z + z)];
  return out;
}

void expect_exact(const std::vector<f32>& got, const std::vector<f32>& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(f32)));
}

// ---- byte identity across worker counts and cache budgets -------------------

TEST(Reader, SliceMatchesFullDecompressEveryConfig) {
  const Dims dims{20, 16, 24};
  const Fixture fx = Fixture::make(dims, 6);
  const Slice slices[] = {
      {.nx = 20, .ny = 16, .nz = 24},                            // everything
      {.x = 3, .y = 2, .z = 5, .nx = 9, .ny = 11, .nz = 13},     // interior
      {.x = 0, .y = 0, .z = 23, .nx = 20, .ny = 16, .nz = 1},    // last plane
      {.x = 19, .y = 15, .z = 0, .nx = 1, .ny = 1, .nz = 24},    // a z-column
      {.x = 7, .y = 9, .z = 11, .nx = 1, .ny = 1, .nz = 1},      // one value
  };
  const size_t chunk_bytes = dims.x * dims.y * 4 * sizeof(f32);
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    // Budgets: everything resident / one chunk (eviction on every read) /
    // zero (every published chunk evicted immediately).
    for (const size_t budget : {size_t{1} << 30, chunk_bytes, size_t{0}}) {
      Reader reader(fx.container,
                    ReaderOptions{.workers = workers, .cache_bytes = budget});
      for (int pass = 0; pass < 2; ++pass) {  // cold, then warm/evicted
        for (const Slice& s : slices) {
          SCOPED_TRACE("workers=" + std::to_string(workers) +
                       " budget=" + std::to_string(budget) +
                       " pass=" + std::to_string(pass));
          expect_exact(reader.read(s),
                       reference_slice(fx.full, dims, s));
        }
      }
    }
  }
}

TEST(Reader, Rank1And2SlicesExact) {
  const Dims d1{4096};
  const Fixture fx1 = Fixture::make(d1, 5, 2, 22);
  Reader r1(fx1.container, ReaderOptions{.workers = 2});
  for (const Slice s : {Slice{.x = 0, .nx = 4096}, Slice{.x = 700, .nx = 901},
                        Slice{.x = 4095, .nx = 1}})
    expect_exact(r1.read(s), reference_slice(fx1.full, d1, s));

  const Dims d2{96, 70};
  const Fixture fx2 = Fixture::make(d2, 4, 2, 23);
  Reader r2(fx2.container, ReaderOptions{.workers = 2});
  for (const Slice s :
       {Slice{.nx = 96, .ny = 70}, Slice{.x = 10, .y = 17, .nx = 33, .ny = 41},
        Slice{.x = 95, .y = 0, .nx = 1, .ny = 70}})
    expect_exact(r2.read(s), reference_slice(fx2.full, d2, s));
}

TEST(Reader, ReadFlatCrossesChunkBoundaries) {
  const Dims dims{64, 48};
  const Fixture fx = Fixture::make(dims, 5);
  Reader reader(fx.container, ReaderOptions{.workers = 2});
  for (const auto [first, n] : std::initializer_list<std::pair<size_t, size_t>>{
           {0, dims.count()}, {600, 1700}, {dims.count() - 1, 1}}) {
    std::vector<f32> got(n);
    reader.read_flat(first, got);
    const std::vector<f32> want(fx.full.begin() + static_cast<long>(first),
                                fx.full.begin() + static_cast<long>(first + n));
    expect_exact(got, want);
  }
}

TEST(Reader, LegacyV1ContainerReads) {
  const Dims dims{32, 24, 10};
  const Fixture fx = Fixture::make(dims, 4, /*version=*/1);
  Reader reader(fx.container, ReaderOptions{.workers = 2});
  EXPECT_EQ(reader.info().version, 1u);
  const Slice s{.x = 5, .y = 3, .z = 2, .nx = 20, .ny = 18, .nz = 7};
  expect_exact(reader.read(s), reference_slice(fx.full, dims, s));
}

TEST(Reader, SingleFieldStreamWrapsAsOneChunk) {
  const Field f = generate_field(Dataset::CESM, Dims{50, 40}, 24);
  const FzCompressed c = fz_compress(f.values(), f.dims, {});
  const std::vector<f32> full = fz_decompress(c.bytes).data;
  Reader reader(c.bytes, ReaderOptions{.workers = 2});
  EXPECT_EQ(reader.info().version, 0u);
  EXPECT_EQ(reader.chunk_count(), 1u);
  const Slice s{.x = 12, .y = 7, .nx = 30, .ny = 25};
  expect_exact(reader.read(s), reference_slice(full, f.dims, s));
}

// ---- cache / prefetch behaviour ---------------------------------------------

TEST(Reader, HotCacheReusesDecodes) {
  const Fixture fx = Fixture::make(Dims{24, 20, 18}, 6);
  telemetry::Sink sink;
  Reader reader(fx.container, ReaderOptions{.workers = 2,
                                            .max_prefetch = 0,
                                            .telemetry = &sink});
  const Slice s{.z = 4, .nx = 24, .ny = 20, .nz = 8};
  (void)reader.read(s);
  const ReaderStats cold = reader.stats();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.hits, 0u);
  (void)reader.read(s);
  const ReaderStats warm = reader.stats();
  EXPECT_EQ(warm.misses, cold.misses);  // every chunk answered from cache
  EXPECT_EQ(warm.hits, cold.misses);
  // The sink mirrors the stats counters.
  EXPECT_EQ(sink.counter(telemetry::Counter::ReaderChunkHit), warm.hits);
  EXPECT_EQ(sink.counter(telemetry::Counter::ReaderChunkMiss), warm.misses);
}

TEST(Reader, SequentialSweepPrefetches) {
  const Dims dims{16, 16, 32};
  const Fixture fx = Fixture::make(dims, 8);
  Reader reader(fx.container, ReaderOptions{.workers = 2, .max_prefetch = 4});
  for (size_t z = 0; z < dims.z; z += 4) {
    const Slice s{.z = z, .nx = 16, .ny = 16, .nz = 4};
    expect_exact(reader.read(s), reference_slice(fx.full, dims, s));
  }
  const ReaderStats stats = reader.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_hits, 0u);
  // Prefetching changes who decodes, never the totals: every chunk was
  // decoded exactly once (demand miss or prefetch), none twice.
  EXPECT_EQ(stats.misses + stats.prefetch_issued, reader.chunk_count());
}

TEST(Reader, EvictionUnderPressureStaysExact) {
  const Dims dims{16, 16, 30};
  const Fixture fx = Fixture::make(dims, 10);
  // Budget of ~2 chunks: a full sweep must evict most of what it decodes.
  const size_t budget = 2 * (dims.x * dims.y * 3 * sizeof(f32));
  Reader reader(fx.container,
                ReaderOptions{.workers = 4, .cache_bytes = budget});
  for (int pass = 0; pass < 2; ++pass) {
    const Slice s{.nx = 16, .ny = 16, .nz = 30};
    expect_exact(reader.read(s), reference_slice(fx.full, dims, s));
  }
  const ReaderStats stats = reader.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, budget);
}

TEST(Reader, RejectsOutOfBoundsSlices) {
  const Fixture fx = Fixture::make(Dims{16, 16, 8}, 2);
  Reader reader(fx.container, ReaderOptions{.workers = 1});
  std::vector<f32> out(16);
  EXPECT_THROW(reader.read(Slice{.x = 1, .nx = 16}, out), Error);
  EXPECT_THROW(reader.read(Slice{.z = 8, .nx = 1, .nz = 1},
                           std::span<f32>(out.data(), 1)),
               Error);
  EXPECT_THROW(reader.read(Slice{.nx = 16, .ny = 0}, out), Error);
  EXPECT_THROW(reader.read(Slice{.nx = 4}, out), Error);  // size mismatch
  EXPECT_THROW(reader.read_flat(fx.full.size(), out), Error);
}

TEST(Reader, CorruptChunkPayloadSurfacesAsError) {
  const Fixture fx = Fixture::make(Dims{16, 16, 8}, 2);
  const ContainerInfo info = fz_container_info(fx.container);
  std::vector<u8> bad = fx.container;
  // Break chunk 1's own stream magic: the container index still parses, the
  // chunk decode fails, and the error must reach the waiting reader (twice
  // — a failed load is not cached).
  const ChunkEntry& c = info.chunks[1];
  bad[c.offset] ^= 0xff;
  Reader reader(bad, ReaderOptions{.workers = 2});
  std::vector<f32> out(16 * 16 * 8);
  EXPECT_THROW(reader.read(Slice{.nx = 16, .ny = 16, .nz = 8}, out), Error);
  EXPECT_THROW(reader.read(Slice{.nx = 16, .ny = 16, .nz = 8}, out), Error);
  // The intact chunk still reads fine.
  const Slice good{.nx = 16, .ny = 16, .nz = 1};
  expect_exact(reader.read(good), reference_slice(fx.full, Dims{16, 16, 8},
                                                  good));
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskWithValidWorkerIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<size_t> ran{0};
  std::atomic<bool> bad_worker{false};
  for (int i = 0; i < 200; ++i)
    pool.submit([&](size_t w) {
      if (w >= 4) bad_worker.store(true);
      ran.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 200u);
  EXPECT_FALSE(bad_worker.load());
  EXPECT_EQ(pool.dropped_exceptions(), 0u);
}

TEST(ThreadPoolTest, SwallowsAndCountsTaskExceptions) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i)
    pool.submit([](size_t) { throw std::runtime_error("task bug"); });
  pool.wait_idle();
  EXPECT_EQ(pool.dropped_exceptions(), 8u);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  pool.submit([&](size_t) {
    ran.fetch_add(1);
    for (int i = 0; i < 5; ++i) pool.submit([&](size_t) { ran.fetch_add(1); });
  });
  // wait_idle only returns once the nested submissions drained too.
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 6u);
}

// ---- Prefetcher -------------------------------------------------------------

TEST(PrefetcherTest, RampsOnSequentialAccessAndResetsOnSeek) {
  Prefetcher p(8);
  EXPECT_TRUE(p.on_access(0, 0, 100).empty());  // one access is no pattern
  EXPECT_EQ(p.on_access(1, 1, 100), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(p.on_access(2, 3, 100), (std::vector<size_t>{4, 5, 6, 7}));
  EXPECT_EQ(p.on_access(4, 4, 100).size(), 8u);  // capped at max_degree
  EXPECT_TRUE(p.on_access(50, 51, 100).empty());  // seek resets the pattern
  EXPECT_EQ(p.on_access(52, 52, 100), (std::vector<size_t>{53, 54}));
}

TEST(PrefetcherTest, ClampsToTheContainerAndHonorsZeroDegree) {
  Prefetcher p(8);
  (void)p.on_access(7, 7, 10);
  EXPECT_EQ(p.on_access(8, 8, 10), (std::vector<size_t>{9}));  // clamped
  EXPECT_TRUE(p.on_access(9, 9, 10).empty());  // nothing past the end

  Prefetcher off(0);
  (void)off.on_access(0, 0, 10);
  EXPECT_TRUE(off.on_access(1, 1, 10).empty());
}

TEST(PrefetcherTest, OverlappingForwardWindowsStillRamp) {
  Prefetcher p(4);
  (void)p.on_access(0, 3, 100);
  EXPECT_FALSE(p.on_access(2, 5, 100).empty());  // overlaps forward
  EXPECT_TRUE(p.on_access(2, 5, 100).empty());   // pure re-read: no advance
}

// ---- ChunkCache -------------------------------------------------------------

TEST(ChunkCacheTest, SingleLoaderPerEntryAndLruEviction) {
  BufferPool buffers;
  ChunkCache cache(2 * 64, nullptr);  // room for two 64-byte chunks

  const auto load = [&](size_t id) {
    ChunkCache::Lookup l = cache.acquire(id, false);
    if (l.load) {
      l.entry->data = buffers.acquire(64);
      cache.publish(id, l.entry, 64);
    }
    return l;
  };

  EXPECT_TRUE(load(0).load);
  EXPECT_FALSE(load(0).load);  // second acquire is a hit
  (void)load(1);
  (void)load(0);  // touch 0 so 1 is now the LRU
  (void)load(2);  // over budget: evicts 1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(load(1).load);   // 1 was evicted
  EXPECT_EQ(cache.stats().evictions, 2u);  // ...and reloading it evicted 0
  EXPECT_FALSE(load(2).load);  // 2 (recently used) survived both evictions

  const ChunkCache::Stats stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, cache.budget_bytes());
  EXPECT_EQ(stats.resident_chunks, 2u);
}

TEST(ChunkCacheTest, WaitersSeeThePublishedDataAcrossThreads) {
  BufferPool buffers;
  ChunkCache cache(1 << 20, nullptr);
  ChunkCache::Lookup l = cache.acquire(7, false);
  ASSERT_TRUE(l.load);
  std::thread loader([&] {
    PooledBuffer buf = buffers.acquire(256);
    std::memset(buf.data(), 0xab, buf.size());
    l.entry->data = std::move(buf);
    cache.publish(7, l.entry, 256);
  });
  ChunkCache::EntryPtr waiter = cache.acquire(7, false).entry;
  cache.wait_ready(waiter);
  EXPECT_EQ(waiter->data.size(), 256u);
  EXPECT_EQ(waiter->data.data()[255], 0xab);
  loader.join();
}

TEST(ChunkCacheTest, FailedLoadsPropagateAndAreNotCached) {
  ChunkCache cache(1 << 20, nullptr);
  ChunkCache::Lookup l = cache.acquire(3, false);
  ASSERT_TRUE(l.load);
  l.entry->error = std::make_exception_ptr(Error("decode failed"));
  cache.publish(3, l.entry, 0);
  EXPECT_THROW(cache.wait_ready(l.entry), Error);
  EXPECT_TRUE(cache.acquire(3, false).load);  // retried, not cached
}

TEST(ChunkCacheTest, PrefetchAccountingCountsUsefulnessOnce) {
  BufferPool buffers;
  telemetry::Sink sink;
  ChunkCache cache(1 << 20, &sink);
  ChunkCache::Lookup l = cache.acquire(5, true);  // speculative
  ASSERT_TRUE(l.load);
  l.entry->data = buffers.acquire(64);
  cache.publish(5, l.entry, 64);
  (void)cache.acquire(5, false);  // demand lands on the prefetch
  (void)cache.acquire(5, false);  // plain hit, usefulness already counted
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(sink.counter(telemetry::Counter::ReaderPrefetchIssued), 1u);
  EXPECT_EQ(sink.counter(telemetry::Counter::ReaderPrefetchHit), 1u);
}

}  // namespace
}  // namespace fz
