#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "substrate/bitio.hpp"

namespace fz {
namespace {

TEST(BitWriterMsb, FirstBitIsTopOfFirstByte) {
  BitWriterMsb w;
  w.put_bit(true);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);
}

TEST(BitWriterMsb, PutBitsMsbFirst) {
  BitWriterMsb w;
  w.put_bits(0b1011, 4);
  w.put_bits(0b0010, 4);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110010);
}

TEST(BitIoMsb, RandomRoundTrip) {
  Rng rng(1);
  std::vector<std::pair<u64, int>> items;
  BitWriterMsb w;
  for (int i = 0; i < 2000; ++i) {
    const int n = 1 + static_cast<int>(rng.below(57));
    const u64 v = rng.next_u64() & ((u64{1} << n) - 1);
    items.emplace_back(v, n);
    w.put_bits(v, n);
  }
  const auto bytes = w.take();
  BitReaderMsb r(bytes);
  for (const auto& [v, n] : items) EXPECT_EQ(r.get_bits(n), v);
}

TEST(BitReaderMsb, ThrowsPastEnd) {
  const std::vector<u8> one{0xff};
  BitReaderMsb r(one);
  r.get_bits(8);
  EXPECT_THROW(r.get_bit(), FormatError);
}

TEST(BitIoLsb, FirstBitIsLowBitOfFirstWord) {
  BitWriterLsb w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  const size_t bits = w.bit_count();
  const auto words = w.take();
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0b101u);
  BitReaderLsb r(words, bits);
  EXPECT_TRUE(r.get_bit());
  EXPECT_FALSE(r.get_bit());
  EXPECT_TRUE(r.get_bit());
}

TEST(BitIoLsb, RandomRoundTripAcrossWordBoundaries) {
  Rng rng(2);
  std::vector<std::pair<u64, int>> items;
  BitWriterLsb w;
  for (int i = 0; i < 3000; ++i) {
    const int n = 1 + static_cast<int>(rng.below(63));
    const u64 v = rng.next_u64() & ((u64{1} << n) - 1);
    items.emplace_back(v, n);
    w.put_bits(v, n);
  }
  const size_t bits = w.bit_count();
  const auto words = w.take();
  BitReaderLsb r(words, bits);
  for (const auto& [v, n] : items) EXPECT_EQ(r.get_bits(n), v);
  EXPECT_THROW(r.get_bit(), FormatError);
}

TEST(BitWriterLsb, PutBitRReturnsBit) {
  BitWriterLsb w;
  EXPECT_TRUE(w.put_bit_r(true));
  EXPECT_FALSE(w.put_bit_r(false));
}

TEST(ByteIo, ScalarsAndSpans) {
  std::vector<u8> out;
  ByteWriter w(out);
  w.put<u32>(0x11223344);
  w.put<f64>(3.5);
  const std::vector<u8> extra{9, 8, 7};
  w.put_bytes(extra);
  ByteReader r(out);
  EXPECT_EQ(r.get<u32>(), 0x11223344u);
  EXPECT_DOUBLE_EQ(r.get<f64>(), 3.5);
  const ByteSpan tail = r.get_bytes(3);
  EXPECT_EQ(tail[0], 9);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.get<u8>(), FormatError);
}

}  // namespace
}  // namespace fz
