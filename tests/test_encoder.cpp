#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bitshuffle.hpp"
#include "core/encoder.hpp"

namespace fz {
namespace {

/// Sparse word stream: most 16-byte blocks all zero.
std::vector<u32> sparse_words(size_t nwords, double nonzero_frac, u64 seed) {
  Rng rng(seed);
  std::vector<u32> v(nwords, 0);
  const size_t nblocks = nwords / kBlockWords;
  for (size_t blk = 0; blk < nblocks; ++blk) {
    if (rng.uniform() < nonzero_frac) {
      // Light up one or more words of the block.
      v[blk * kBlockWords + rng.below(kBlockWords)] = rng.next_u32() | 1;
    }
  }
  return v;
}

class EncoderRoundTrip
    : public ::testing::TestWithParam<std::pair<size_t, double>> {};

TEST_P(EncoderRoundTrip, DecodeRestoresExactWords) {
  const auto [nwords, frac] = GetParam();
  const auto words = sparse_words(nwords, frac, 5 + nwords);
  const EncodeResult enc = encode_blocks(words);
  std::vector<u32> back(words.size(), 0xffffffffu);
  decode_blocks(enc.bit_flags, enc.blocks, back);
  EXPECT_EQ(back, words);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EncoderRoundTrip,
    ::testing::Values(std::pair<size_t, double>{1024, 0.0},
                      std::pair<size_t, double>{1024, 0.05},
                      std::pair<size_t, double>{1024, 0.5},
                      std::pair<size_t, double>{1024, 1.0},
                      std::pair<size_t, double>{4096, 0.1},
                      std::pair<size_t, double>{1 << 16, 0.3},
                      std::pair<size_t, double>{4, 1.0}));

TEST(Encoder, FlagsMatchBlockContents) {
  std::vector<u32> words(16 * kBlockWords, 0);
  words[0 * kBlockWords + 0] = 1;   // block 0 nonzero
  words[7 * kBlockWords + 3] = 2;   // block 7 nonzero
  words[15 * kBlockWords + 1] = 3;  // block 15 nonzero
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(words, byte_flags, bit_flags);
  ASSERT_EQ(byte_flags.size(), 16u);
  for (size_t b = 0; b < 16; ++b)
    EXPECT_EQ(byte_flags[b], (b == 0 || b == 7 || b == 15) ? 1 : 0) << b;
  ASSERT_EQ(bit_flags.size(), 2u);
  EXPECT_EQ(bit_flags[0], 0x81);  // blocks 0 and 7
  EXPECT_EQ(bit_flags[1], 0x80);  // block 15
}

TEST(Encoder, CompactionKeepsBlockOrder) {
  std::vector<u32> words(8 * kBlockWords, 0);
  for (size_t blk : {1u, 4u, 6u})
    for (size_t k = 0; k < kBlockWords; ++k)
      words[blk * kBlockWords + k] = static_cast<u32>(blk * 100 + k);
  const EncodeResult enc = encode_blocks(words);
  ASSERT_EQ(enc.nonzero_blocks, 3u);
  // Blocks must appear in ascending original order.
  EXPECT_EQ(enc.blocks[0], 100u);
  EXPECT_EQ(enc.blocks[kBlockWords], 400u);
  EXPECT_EQ(enc.blocks[2 * kBlockWords], 600u);
}

TEST(Encoder, AllZeroCompressesToFlagsOnly) {
  const std::vector<u32> words(1 << 14, 0);
  const EncodeResult enc = encode_blocks(words);
  EXPECT_EQ(enc.nonzero_blocks, 0u);
  EXPECT_EQ(enc.blocks.size(), 0u);
  // 1 bit per 16-byte block = 128x reduction, the paper's ratio ceiling.
  EXPECT_EQ(enc.payload_bytes(), (words.size() * 4) / 128);
}

TEST(Encoder, PayloadAccountsFlagsPlusBlocks) {
  const auto words = sparse_words(1 << 12, 0.25, 9);
  const EncodeResult enc = encode_blocks(words);
  EXPECT_EQ(enc.payload_bytes(),
            enc.bit_flags.size() + enc.blocks.size() * sizeof(u32));
  EXPECT_EQ(enc.total_blocks, words.size() / kBlockWords);
}

TEST(Encoder, DecodeRejectsWrongPayloadSize) {
  const auto words = sparse_words(1024, 0.5, 10);
  EncodeResult enc = encode_blocks(words);
  enc.blocks.resize(enc.blocks.size() - kBlockWords);  // drop one block
  std::vector<u32> back(words.size());
  EXPECT_THROW(decode_blocks(enc.bit_flags, enc.blocks, back), FormatError);
}

TEST(Encoder, DecodeRejectsShortFlagArray) {
  const auto words = sparse_words(1024, 0.5, 11);
  const EncodeResult enc = encode_blocks(words);
  const std::vector<u8> short_flags(enc.bit_flags.begin(),
                                    enc.bit_flags.end() - 1);
  std::vector<u32> back(words.size());
  EXPECT_THROW(decode_blocks(short_flags, enc.blocks, back), FormatError);
}

TEST(Encoder, CompactBlocksReportsScanCost) {
  const auto words = sparse_words(1 << 12, 0.5, 12);
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(words, byte_flags, bit_flags);
  std::vector<u32> blocks;
  const auto cost = compact_blocks(words, byte_flags, blocks);
  EXPECT_EQ(cost.kernel_launches, 2u);  // two-kernel scan split (§3.4)
}

}  // namespace
}  // namespace fz
