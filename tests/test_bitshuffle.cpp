#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bitshuffle.hpp"

namespace fz {
namespace {

std::vector<u32> random_words(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

TEST(TransposeBit32, MatchesNaiveGather) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    u32 a[32], naive[32] = {};
    for (auto& w : a) w = rng.next_u32();
    for (int j = 0; j < 32; ++j)
      for (int i = 0; i < 32; ++i) naive[j] |= ((a[i] >> j) & 1u) << i;
    transpose_bit_matrix_32(a);
    for (int j = 0; j < 32; ++j) EXPECT_EQ(a[j], naive[j]) << "plane " << j;
  }
}

TEST(TransposeBit32, IsInvolution) {
  u32 a[32], orig[32];
  Rng rng(2);
  for (int i = 0; i < 32; ++i) orig[i] = a[i] = rng.next_u32();
  transpose_bit_matrix_32(a);
  transpose_bit_matrix_32(a);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a[i], orig[i]);
}

class BitshuffleTiles : public ::testing::TestWithParam<size_t> {};

TEST_P(BitshuffleTiles, RoundTrip) {
  const size_t tiles = GetParam();
  const auto in = random_words(tiles * kTileWords, 3 + tiles);
  std::vector<u32> shuffled(in.size()), back(in.size());
  bitshuffle_tiles(in, shuffled);
  bitunshuffle_tiles(shuffled, back);
  EXPECT_EQ(back, in);
}

INSTANTIATE_TEST_SUITE_P(TileCounts, BitshuffleTiles,
                         ::testing::Values(1, 2, 3, 7, 64));

TEST(Bitshuffle, PlaneMajorLayout) {
  // Word with only bit 5 set in input word 3 of unit 2 must land in output
  // position plane-5 * 32 + unit-2, as bit 3.
  std::vector<u32> in(kTileWords, 0);
  in[2 * kUnitWords + 3] = 1u << 5;
  std::vector<u32> out(kTileWords);
  bitshuffle_tiles(in, out);
  for (size_t w = 0; w < kTileWords; ++w) {
    if (w == 5 * kUnitsPerTile + 2) {
      EXPECT_EQ(out[w], 1u << 3);
    } else {
      EXPECT_EQ(out[w], 0u) << w;
    }
  }
}

TEST(Bitshuffle, SmallCodesConcentrateZeros) {
  // 16-bit codes with magnitudes < 2^4: after the shuffle, at most planes
  // {0..3, 15} of the low half and {16..19, 31} of the high half can be
  // nonzero -> >= 22 of 32 planes are all-zero.  This is the property the
  // flag encoder exploits.
  Rng rng(4);
  std::vector<u32> in(kTileWords);
  for (auto& w : in) {
    const u16 lo = static_cast<u16>(rng.below(16)) |
                   (rng.below(2) ? u16{0x8000} : u16{0});
    const u16 hi = static_cast<u16>(rng.below(16)) |
                   (rng.below(2) ? u16{0x8000} : u16{0});
    w = static_cast<u32>(lo) | (static_cast<u32>(hi) << 16);
  }
  std::vector<u32> out(kTileWords);
  bitshuffle_tiles(in, out);
  size_t zero_planes = 0;
  for (size_t plane = 0; plane < 32; ++plane) {
    bool all_zero = true;
    for (size_t u = 0; u < kUnitsPerTile; ++u)
      all_zero &= out[plane * kUnitsPerTile + u] == 0;
    zero_planes += all_zero;
  }
  EXPECT_GE(zero_planes, 22u);
}

TEST(Bitshuffle, AllZeroInputStaysZero) {
  const std::vector<u32> in(kTileWords, 0);
  std::vector<u32> out(kTileWords, 1);
  bitshuffle_tiles(in, out);
  for (const u32 w : out) EXPECT_EQ(w, 0u);
}

TEST(Bitshuffle, RejectsBadSizes) {
  std::vector<u32> a(100), b(100);
  EXPECT_THROW(bitshuffle_tiles(a, b), Error);
  std::vector<u32> c(kTileWords), d(kTileWords - 1);
  EXPECT_THROW(bitshuffle_tiles(c, d), Error);
}

TEST(Bitshuffle, RejectsAliasing) {
  std::vector<u32> a(kTileWords);
  EXPECT_THROW(bitshuffle_tiles(a, a), Error);
}

}  // namespace
}  // namespace fz
