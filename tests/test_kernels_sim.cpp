#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/bitshuffle.hpp"
#include "core/encoder.hpp"
#include "core/format.hpp"
#include "core/kernels_sim.hpp"
#include "core/kernels_simd.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "baselines/cuszx.hpp"
#include "substrate/huffman.hpp"
#include "datasets/field.hpp"
#include "metrics/metrics.hpp"

namespace fz {
namespace {

std::vector<u32> random_words(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

std::vector<u32> sparse_code_words(size_t n, u64 seed) {
  // Small sign-magnitude codes, like real post-quantization data.
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) {
    const u16 lo = static_cast<u16>(rng.below(32));
    const u16 hi = static_cast<u16>(rng.below(32)) |
                   (rng.below(4) == 0 ? u16{0x8000} : u16{0});
    w = static_cast<u32>(lo) | (static_cast<u32>(hi) << 16);
  }
  return v;
}

TEST(SimFusedKernel, MatchesNativeBitshuffleExactly) {
  const auto in = random_words(2 * kTileWords, 1);
  std::vector<u32> native(in.size()), simulated(in.size());
  bitshuffle_tiles(in, native);

  std::vector<u8> sim_byte_flags, sim_bit_flags;
  sim_bitshuffle_mark_fused(in, simulated, sim_byte_flags, sim_bit_flags);
  EXPECT_EQ(simulated, native);
}

TEST(SimFusedKernel, FlagsMatchNativeMark) {
  const auto in = sparse_code_words(3 * kTileWords, 2);
  std::vector<u32> native(in.size()), simulated(in.size());
  bitshuffle_tiles(in, native);
  std::vector<u8> native_byte_flags, native_bit_flags;
  mark_blocks(native, native_byte_flags, native_bit_flags);

  std::vector<u8> sim_byte_flags, sim_bit_flags;
  sim_bitshuffle_mark_fused(in, simulated, sim_byte_flags, sim_bit_flags);
  EXPECT_EQ(sim_byte_flags, native_byte_flags);
  EXPECT_EQ(sim_bit_flags, native_bit_flags);
}

TEST(SimFusedKernel, PaddingEliminatesBankConflicts) {
  // The §3.3 claim, measured on the real kernel: with the 32x33 padded
  // shared tile the column-wise accesses are conflict-free; dropping the
  // padding multiplies shared-memory transactions.
  const auto in = random_words(kTileWords, 3);
  std::vector<u32> out_p(in.size()), out_u(in.size());
  std::vector<u8> bf, ff;
  const auto padded = sim_bitshuffle_mark_fused(in, out_p, bf, ff, true);
  const auto unpadded = sim_bitshuffle_mark_fused(in, out_u, bf, ff, false);
  EXPECT_EQ(out_p, out_u);  // functionally identical
  EXPECT_GT(unpadded.shared_transactions, 4 * padded.shared_transactions);
}

TEST(SimFusedKernel, CountsGlobalTraffic) {
  const auto in = random_words(kTileWords, 4);
  std::vector<u32> out(in.size());
  std::vector<u8> bf, ff;
  const auto cost = sim_bitshuffle_mark_fused(in, out, bf, ff);
  EXPECT_EQ(cost.kernel_launches, 1u);
  // Reads the tile once, writes tile + byte flags + bit flags.
  EXPECT_EQ(cost.global_bytes_read, kTileBytes);
  EXPECT_EQ(cost.global_bytes_written, kTileBytes + kBlocksPerTile + kBlocksPerTile / 8);
}

TEST(SimCompact, MatchesNativeCompaction) {
  const auto in = sparse_code_words(2 * kTileWords, 5);
  std::vector<u32> shuffled(in.size());
  bitshuffle_tiles(in, shuffled);
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(shuffled, byte_flags, bit_flags);

  std::vector<u32> native_blocks;
  compact_blocks(shuffled, byte_flags, native_blocks);
  std::vector<u32> sim_blocks;
  sim_compact_blocks(shuffled, byte_flags, sim_blocks);
  EXPECT_EQ(sim_blocks, native_blocks);
}

TEST(SimCompact, EndToEndSimulatedEncodeDecodes) {
  // Full simulated phase-1 + phase-2, decoded by the native decoder.
  const auto in = sparse_code_words(kTileWords, 6);
  std::vector<u32> shuffled(in.size());
  std::vector<u8> byte_flags, bit_flags;
  sim_bitshuffle_mark_fused(in, shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  sim_compact_blocks(shuffled, byte_flags, blocks);

  std::vector<u32> restored_shuffled(in.size());
  decode_blocks(bit_flags, blocks, restored_shuffled);
  std::vector<u32> back(in.size());
  bitunshuffle_tiles(restored_shuffled, back);
  EXPECT_EQ(back, in);
}

TEST(SimPredQuant, MatchesNativeDualQuantization) {
  // The simulated kernel recomputes neighbour prequants per thread; the
  // native path prequantizes once then runs Lorenzo.  Identical results
  // prove dual-quantization's independence claim (2.3).
  for (const Dims dims : {Dims{777}, Dims{33, 21}, Dims{9, 10, 11}}) {
    Field f;
    f.dims = dims;
    f.data.resize(dims.count());
    Rng rng(dims.count());
    for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));
    const double abs_eb = 0.01;

    std::vector<i64> pq(f.count());
    prequantize(f.values(), abs_eb, pq);
    lorenzo_forward(pq, dims, pq);
    const QuantV2Result native = quant_encode_v2(pq);

    std::vector<u16> simulated(f.count());
    const auto cost = sim_pred_quant_v2(f.values(), dims, abs_eb, simulated);
    EXPECT_EQ(simulated, native.codes) << dims.to_string();
    EXPECT_EQ(cost.kernel_launches, 1u);
    EXPECT_GE(cost.global_bytes_read, f.bytes());
    EXPECT_EQ(cost.global_bytes_written, f.count() * sizeof(u16));
  }
}

TEST(SimPredQuant, FeedsTheFullSimulatedPipeline) {
  // All three paper kernels, simulated end to end: pred-quant -> fused
  // bitshuffle+mark -> compact; decoded by the NATIVE decompressor.
  Field f;
  f.dims = Dims{64, 32};  // 2048 values = exactly one tile of codes
  f.data.resize(f.dims.count());
  Rng rng(99);
  f32 acc = 0;
  for (auto& v : f.data) {
    acc += static_cast<f32>(rng.normal(0.0, 0.05));
    v = acc;
  }
  const double abs_eb = 1e-3;

  std::vector<u16> codes(f.count());
  sim_pred_quant_v2(f.values(), f.dims, abs_eb, codes);

  // Native path for comparison: full pipeline compress.
  FzParams params;
  params.eb = ErrorBound::absolute(abs_eb);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  const FzDecompressed d = fz_decompress(c.bytes);
  EXPECT_TRUE(error_bounded(f.values(), d.data, abs_eb));

  // The simulated codes must round-trip through the simulated encoder.
  std::span<const u32> words{reinterpret_cast<const u32*>(codes.data()),
                             codes.size() / 2};
  std::vector<u32> shuffled(words.size());
  std::vector<u8> byte_flags, bit_flags;
  sim_bitshuffle_mark_fused(words, shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  sim_compact_blocks(shuffled, byte_flags, blocks);
  std::vector<u32> restored(words.size());
  sim_scatter_blocks(bit_flags, blocks, restored);
  std::vector<u32> back(words.size());
  sim_bitunshuffle(restored, back);
  EXPECT_TRUE(std::equal(words.begin(), words.end(), back.begin()));
}

TEST(SimFusedQuant, MatchesHostFusedStageExactly) {
  // The single-launch device kernel (quant + Lorenzo + encode + transpose
  // + mark) must produce the same shuffled words, flag arrays and anchor
  // as the host fused tile pipeline, byte for byte — including tile
  // padding and residual saturation clipping.
  for (const Dims dims : {Dims{777}, Dims{4113}, Dims{33, 21}, Dims{9, 10, 11}}) {
    Field f;
    f.dims = dims;
    f.data.resize(dims.count());
    Rng rng(dims.count() + 1);
    for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));
    const double abs_eb = 0.01;

    const size_t words = round_up(f.count(), kCodesPerTile) / 2;
    const size_t blocks = words / kBlockWords;
    std::vector<u32> host_shuffled(words), sim_shuffled(words);
    std::vector<u8> host_byte(blocks), host_bit(blocks / 8);
    std::vector<i64> row_scratch(fused_row_scratch_elems(dims));
    std::vector<i64> plane_scratch(fused_plane_scratch_elems(dims));
    const FusedTileResult host = fused_quant_shuffle_mark(
        f.values(), dims, abs_eb, /*f32_fast=*/false, host_shuffled,
        host_byte, host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);

    std::vector<u8> sim_byte, sim_bit;
    std::vector<i64> anchor(1, -1);
    const auto cost = sim_fused_quant_shuffle_mark(
        f.values(), dims, abs_eb, sim_shuffled, sim_byte, sim_bit, anchor);
    EXPECT_EQ(sim_shuffled, host_shuffled) << dims.to_string();
    EXPECT_EQ(sim_byte, host_byte) << dims.to_string();
    EXPECT_EQ(sim_bit, host_bit) << dims.to_string();
    EXPECT_EQ(anchor[0], host.anchor) << dims.to_string();

    // One launch; the u16 code array never touches global memory, so the
    // only writes are the shuffled words, the flags, and the anchor.
    EXPECT_EQ(cost.kernel_launches, 1u);
    EXPECT_EQ(cost.global_bytes_written, words * sizeof(u32) + blocks +
                                             blocks / 8 + sizeof(i64));
  }
}

TEST(SimFusedQuant, ClipsSaturatedResidualsLikeTheHost) {
  // Steps far beyond the 16-bit residual range must clip identically.
  Field f;
  f.dims = Dims{1500};
  f.data.resize(f.dims.count());
  Rng rng(5);
  for (size_t i = 0; i < f.data.size(); ++i)
    f.data[i] = (i % 7 == 0) ? static_cast<f32>(rng.uniform(-4e6, 4e6))
                             : static_cast<f32>(rng.uniform(-1.0, 1.0));
  const double abs_eb = 1e-3;

  const size_t words = round_up(f.count(), kCodesPerTile) / 2;
  std::vector<u32> host_shuffled(words), sim_shuffled(words);
  std::vector<u8> host_byte(words / kBlockWords), host_bit(host_byte.size() / 8);
  std::vector<i64> row_scratch(fused_row_scratch_elems(f.dims));
  std::vector<i64> plane_scratch(fused_plane_scratch_elems(f.dims));
  const FusedTileResult host = fused_quant_shuffle_mark(
      f.values(), f.dims, abs_eb, /*f32_fast=*/false, host_shuffled,
      host_byte, host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);
  ASSERT_GT(host.saturated, 0u);  // the test is vacuous otherwise

  std::vector<u8> sim_byte, sim_bit;
  std::vector<i64> anchor(1);
  sim_fused_quant_shuffle_mark(f.values(), f.dims, abs_eb, sim_shuffled,
                               sim_byte, sim_bit, anchor);
  EXPECT_EQ(sim_shuffled, host_shuffled);
  EXPECT_EQ(anchor[0], host.anchor);
}

TEST(SimFusedQuant, StripsKernelMatchesHostAndSinglePassExactly) {
  // The PR5 strips variant re-prequantizes each block's halo cooperatively
  // into shared memory instead of recomputing neighbours per thread.  Its
  // output must stay byte-identical to both the host fused stage and the
  // single-pass kernel for every rank — including multi-tile 3-D shapes
  // where the halo spans a whole plane.
  for (const Dims dims :
       {Dims{777}, Dims{4113}, Dims{64, 80}, Dims{40, 24, 8}}) {
    Field f;
    f.dims = dims;
    f.data.resize(dims.count());
    Rng rng(dims.count() + 3);
    for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));
    const double abs_eb = 0.01;

    const size_t words = round_up(f.count(), kCodesPerTile) / 2;
    const size_t blocks = words / kBlockWords;
    std::vector<u32> host_shuffled(words), sim_shuffled(words);
    std::vector<u8> host_byte(blocks), host_bit(blocks / 8);
    std::vector<i64> row_scratch(fused_row_scratch_elems(dims));
    std::vector<i64> plane_scratch(fused_plane_scratch_elems(dims));
    const FusedTileResult host = fused_quant_shuffle_mark(
        f.values(), dims, abs_eb, /*f32_fast=*/false, host_shuffled,
        host_byte, host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);

    std::vector<u8> sim_byte, sim_bit;
    std::vector<i64> anchor(1, -1);
    const auto cost = sim_fused_quant_shuffle_mark_strips(
        f.values(), dims, abs_eb, sim_shuffled, sim_byte, sim_bit, anchor);
    EXPECT_EQ(sim_shuffled, host_shuffled) << dims.to_string();
    EXPECT_EQ(sim_byte, host_byte) << dims.to_string();
    EXPECT_EQ(sim_bit, host_bit) << dims.to_string();
    EXPECT_EQ(anchor[0], host.anchor) << dims.to_string();
    EXPECT_EQ(cost.kernel_launches, 1u);
  }
}

TEST(SimFusedQuant, StripsKernelCutsGlobalReadsOnHigherRanks) {
  // The point of the cooperative halo: each element is loaded from global
  // memory once per block (plus the halo), not once per stencil use.  On a
  // 3-D field the single-pass kernel performs up to eight global
  // recomputes per element, so the strips kernel must read strictly less.
  Field f;
  f.dims = Dims{40, 24, 8};
  f.data.resize(f.dims.count());
  Rng rng(9);
  for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));

  const size_t words = round_up(f.count(), kCodesPerTile) / 2;
  std::vector<u32> a(words), b(words);
  std::vector<u8> byte_a, bit_a, byte_b, bit_b;
  std::vector<i64> anchor_a(1), anchor_b(1);
  const auto single = sim_fused_quant_shuffle_mark(f.values(), f.dims, 0.01,
                                                   a, byte_a, bit_a, anchor_a);
  const auto strips = sim_fused_quant_shuffle_mark_strips(
      f.values(), f.dims, 0.01, b, byte_b, bit_b, anchor_b);
  EXPECT_EQ(a, b);
  EXPECT_LT(strips.global_bytes_read, single.global_bytes_read);
}

TEST(SimFusedQuant, StripsKernelSplitsPlaneHaloWhenItExceedsBudget) {
  // A 3-D slab whose plane halo would blow the shared-memory budget
  // (300*200 i64 ≈ 480 KB) now stages through the two bounded split
  // windows (near rows + z-plane band) and must still match the host
  // stage byte for byte.  (The genuine fallback — split windows too big —
  // is pinned in tests/test_fused_decompress.cpp.)
  Field f;
  f.dims = Dims{300, 200, 2};
  f.data.resize(f.dims.count());
  Rng rng(11);
  for (auto& v : f.data) v = static_cast<f32>(rng.uniform(-50.0, 50.0));

  const size_t words = round_up(f.count(), kCodesPerTile) / 2;
  const size_t blocks = words / kBlockWords;
  std::vector<u32> host_shuffled(words), sim_shuffled(words);
  std::vector<u8> host_byte(blocks), host_bit(blocks / 8);
  std::vector<i64> row_scratch(fused_row_scratch_elems(f.dims));
  std::vector<i64> plane_scratch(fused_plane_scratch_elems(f.dims));
  const FusedTileResult host = fused_quant_shuffle_mark(
      f.values(), f.dims, 0.01, /*f32_fast=*/false, host_shuffled, host_byte,
      host_bit, row_scratch, plane_scratch, SimdLevel::Scalar);

  std::vector<u8> sim_byte, sim_bit;
  std::vector<i64> anchor(1, -1);
  sim_fused_quant_shuffle_mark_strips(f.values(), f.dims, 0.01, sim_shuffled,
                                      sim_byte, sim_bit, anchor);
  EXPECT_EQ(sim_shuffled, host_shuffled);
  EXPECT_EQ(sim_byte, host_byte);
  EXPECT_EQ(anchor[0], host.anchor);
}

TEST(SimHuffman, CoarseGrainedEncodeMatchesNativeByteForByte) {
  Rng rng(42);
  std::vector<u16> syms(20000);
  for (auto& v : syms)
    v = static_cast<u16>(
        std::clamp<i64>(512 + std::llround(rng.normal(0.0, 5.0)), 0, 1023));
  std::vector<u64> hist(1024, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);

  const std::vector<u8> native = huffman_encode(syms, book, 4096);
  std::vector<u8> simulated;
  const auto cost = sim_huffman_encode(syms, book, 4096, simulated);
  EXPECT_EQ(simulated, native);
  EXPECT_EQ(huffman_decode(simulated, book), syms);
  EXPECT_GE(cost.kernel_launches, 3u);  // encode + 2-kernel scan
}

TEST(SimHuffman, RaggedFinalChunk) {
  Rng rng(43);
  std::vector<u16> syms(10001);  // not a chunk multiple
  for (auto& v : syms) v = static_cast<u16>(rng.below(64));
  std::vector<u64> hist(64, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  std::vector<u8> simulated;
  sim_huffman_encode(syms, book, 1000, simulated);
  EXPECT_EQ(simulated, huffman_encode(syms, book, 1000));
}

TEST(SimHuffman, ChunkParallelDecodeMatchesNative) {
  Rng rng(44);
  std::vector<u16> syms(15000);
  for (auto& v : syms)
    v = static_cast<u16>(
        std::clamp<i64>(512 + std::llround(rng.normal(0.0, 8.0)), 0, 1023));
  std::vector<u64> hist(1024, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  const std::vector<u8> stream = huffman_encode(syms, book, 2000);

  std::vector<u16> decoded;
  const auto cost = sim_huffman_decode(stream, book, decoded);
  EXPECT_EQ(decoded, syms);
  EXPECT_EQ(decoded, huffman_decode(stream, book));
  EXPECT_EQ(cost.kernel_launches, 1u);
}

TEST(SimHuffman, EncodeDecodeComposeOnSimulatorOnly) {
  // Encode on the simulated coarse-grained kernel, decode on the simulated
  // chunk-parallel kernel — no native codec in the loop.
  Rng rng(45);
  std::vector<u16> syms(8192);
  for (auto& v : syms) v = static_cast<u16>(rng.below(300));
  std::vector<u64> hist(512, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  std::vector<u8> stream;
  sim_huffman_encode(syms, book, 1024, stream);
  std::vector<u16> decoded;
  sim_huffman_decode(stream, book, decoded);
  EXPECT_EQ(decoded, syms);
}

TEST(SimHuffman, GapSegmentParallelDecodeMatchesNative) {
  Rng rng(48);
  std::vector<u16> syms(15000);
  for (auto& v : syms)
    v = static_cast<u16>(
        std::clamp<i64>(512 + std::llround(rng.normal(0.0, 8.0)), 0, 1023));
  std::vector<u64> hist(1024, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  const std::vector<u8> stream =
      huffman_encode(syms, book, HuffmanEncodeOptions{2000, 256});

  std::vector<u16> decoded;
  const auto cost = sim_huffman_decode_gap(stream, book, decoded);
  EXPECT_EQ(decoded, syms);
  EXPECT_EQ(decoded, huffman_decode(stream, book));
  EXPECT_EQ(cost.kernel_launches, 1u);
  // One thread per segment: more parallel slots than the chunk-grained
  // kernel has chunks.
  EXPECT_GT(parse_huffman_layout(stream).total_segments(),
            parse_huffman_layout(stream).num_chunks);
}

TEST(SimHuffman, GapDecodeHandlesSingleChunkManySegments) {
  // The motivating shape: one chunk used to serialize on one thread.
  Rng rng(49);
  std::vector<u16> syms(30000);
  for (auto& v : syms) v = static_cast<u16>(rng.below(200));
  std::vector<u64> hist(512, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  const std::vector<u8> stream =
      huffman_encode(syms, book, HuffmanEncodeOptions{1u << 20, 512});
  ASSERT_EQ(parse_huffman_layout(stream).num_chunks, 1u);
  std::vector<u16> decoded;
  sim_huffman_decode_gap(stream, book, decoded);
  EXPECT_EQ(decoded, syms);
}

TEST(SimHuffman, GapDecodeAcceptsLegacyStreams) {
  // A pre-gap (v1) stream decodes on the same kernel: one segment per
  // chunk, no gap array.
  Rng rng(50);
  std::vector<u16> syms(9000);
  for (auto& v : syms) v = static_cast<u16>(rng.below(128));
  std::vector<u64> hist(128, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  const std::vector<u8> legacy =
      huffman_encode(syms, book, HuffmanEncodeOptions{1500, 0});
  std::vector<u16> decoded;
  sim_huffman_decode_gap(legacy, book, decoded);
  EXPECT_EQ(decoded, syms);
}

TEST(SimHuffman, GapDecodeDeepCodebookUsesFallbackPath) {
  // A staircase codebook past the two-level table budget exercises the
  // in-kernel bit-serial branch.
  std::vector<u64> hist(40, 0);
  u64 f = 1;
  for (size_t s = 0; s < hist.size(); ++s) {
    hist[s] = f;
    if (f < (u64{1} << 40)) f *= 2;
  }
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  ASSERT_FALSE(build_decode_tables(book).table_ok);
  Rng rng(51);
  std::vector<u16> syms(8000);
  for (auto& v : syms) v = static_cast<u16>(39 - std::min<u64>(rng.below(40), 39));
  const std::vector<u8> stream =
      huffman_encode(syms, book, HuffmanEncodeOptions{2048, 256});
  std::vector<u16> decoded;
  sim_huffman_decode_gap(stream, book, decoded);
  EXPECT_EQ(decoded, syms);
}

TEST(SimSzx, BlockStatsMatchScalarReference) {
  Rng rng(46);
  std::vector<f32> data(1000);  // 7 full blocks + 1 partial (104 values)
  for (auto& v : data) v = static_cast<f32>(rng.uniform(-100.0, 100.0));
  const size_t nblocks = (data.size() + 127) / 128;
  std::vector<f32> mins(nblocks), maxs(nblocks);
  const auto cost = sim_szx_block_stats(data, mins, maxs);
  EXPECT_EQ(cost.kernel_launches, 1u);
  for (size_t blk = 0; blk < nblocks; ++blk) {
    const size_t b = blk * 128;
    const size_t e = std::min(b + 128, data.size());
    f32 lo = data[b], hi = data[b];
    for (size_t i = b; i < e; ++i) {
      lo = std::min(lo, data[i]);
      hi = std::max(hi, data[i]);
    }
    EXPECT_EQ(mins[blk], lo) << blk;
    EXPECT_EQ(maxs[blk], hi) << blk;
  }
}

TEST(SimSzx, StatsDriveTheSameConstantBlockDecisions) {
  // The stats kernel's min/max must reproduce the native encoder's
  // constant/non-constant split exactly (tag byte 0 vs width).
  Rng rng(47);
  std::vector<f32> data(128 * 16);
  for (size_t blk = 0; blk < 16; ++blk) {
    const f32 base = static_cast<f32>(rng.uniform(-10.0, 10.0));
    const bool constant = blk % 3 == 0;
    for (size_t k = 0; k < 128; ++k)
      data[blk * 128 + k] =
          base + (constant ? 0.0f : static_cast<f32>(rng.uniform(0.0, 1.0)));
  }
  const double abs_eb = 1e-3;
  std::vector<f32> mins(16), maxs(16);
  sim_szx_block_stats(data, mins, maxs);

  const std::vector<u8> payload = bench::szx_encode_payload(data, abs_eb);
  // Walk the payload and compare each tag with the kernel's decision.
  size_t pos = 0;
  for (size_t blk = 0; blk < 16; ++blk) {
    const u8 tag = payload[pos];
    const bool kernel_constant =
        static_cast<double>(maxs[blk]) - mins[blk] <= 2 * abs_eb;
    EXPECT_EQ(tag == 0, kernel_constant) << blk;
    pos += 1 + 4;  // tag + mid
    if (tag != 0) pos += (static_cast<size_t>(tag) * 128 + 7) / 8;
  }
  EXPECT_EQ(pos, payload.size());
}

TEST(SimSzx, CodecRoundTripsThroughStandaloneFunctions) {
  Rng rng(48);
  std::vector<f32> data(5000);
  f32 acc = 0;
  for (auto& v : data) {
    acc += static_cast<f32>(rng.normal(0.0, 0.1));
    v = acc;
  }
  const double abs_eb = 1e-2;
  const auto payload = bench::szx_encode_payload(data, abs_eb);
  const auto back = bench::szx_decode_payload(payload, data.size(), abs_eb);
  ASSERT_EQ(back.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::fabs(static_cast<double>(data[i]) - back[i]),
              abs_eb * (1 + 1e-6))
        << i;
}

TEST(SimDecode, ScatterMirrorsNativeDecode) {
  const auto in = sparse_code_words(2 * kTileWords, 7);
  std::vector<u32> shuffled(in.size());
  bitshuffle_tiles(in, shuffled);
  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  compact_blocks(shuffled, byte_flags, blocks);

  std::vector<u32> native(shuffled.size());
  decode_blocks(bit_flags, blocks, native);
  std::vector<u32> simulated(shuffled.size(), 0xffffffffu);
  const auto cost = sim_scatter_blocks(bit_flags, blocks, simulated);
  EXPECT_EQ(simulated, native);
  EXPECT_EQ(simulated, shuffled);
  EXPECT_GE(cost.kernel_launches, 3u);  // scan (2) + scatter (1)
}

TEST(SimDecode, UnshuffleInvertsSimulatedShuffle) {
  const auto in = random_words(2 * kTileWords, 8);
  std::vector<u32> shuffled(in.size()), back(in.size());
  std::vector<u8> bf, ff;
  sim_bitshuffle_mark_fused(in, shuffled, bf, ff);
  sim_bitunshuffle(shuffled, back);
  EXPECT_EQ(back, in);
}

TEST(SimDecode, UnshuffleMatchesNativeInverse) {
  const auto shuffled = random_words(kTileWords, 9);
  std::vector<u32> native(shuffled.size()), simulated(shuffled.size());
  bitunshuffle_tiles(shuffled, native);
  sim_bitunshuffle(shuffled, simulated);
  EXPECT_EQ(simulated, native);
}

TEST(SimDecode, UnshufflePaddingRemovesConflictsToo) {
  const auto in = random_words(kTileWords, 10);
  std::vector<u32> out_p(in.size()), out_u(in.size());
  const auto padded = sim_bitunshuffle(in, out_p, true);
  const auto unpadded = sim_bitunshuffle(in, out_u, false);
  EXPECT_EQ(out_p, out_u);
  EXPECT_GT(unpadded.shared_transactions, 4 * padded.shared_transactions);
}

TEST(SimDecode, FullSimulatedPipelineRoundTrip) {
  // Simulated encode (fused shuffle+mark, compact) then simulated decode
  // (scatter, unshuffle): end-to-end on the device model's own kernels.
  const auto in = sparse_code_words(3 * kTileWords, 11);
  std::vector<u32> shuffled(in.size());
  std::vector<u8> byte_flags, bit_flags;
  sim_bitshuffle_mark_fused(in, shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  sim_compact_blocks(shuffled, byte_flags, blocks);

  std::vector<u32> restored(in.size());
  sim_scatter_blocks(bit_flags, blocks, restored);
  std::vector<u32> codes(in.size());
  sim_bitunshuffle(restored, codes);
  EXPECT_EQ(codes, in);
}

}  // namespace
}  // namespace fz
