#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cuzfp.hpp"
#include "common/rng.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

namespace fz::bench {
namespace {

Field smooth_field(Dims dims, u64 seed) {
  Field f;
  f.dataset = "synthetic";
  f.name = "smooth";
  f.dims = dims;
  f.data.resize(dims.count());
  Rng rng(seed);
  const double fx = rng.uniform(0.05, 0.3);
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x)
        f.data[dims.linear(x, y, z)] = static_cast<f32>(
            std::sin(fx * static_cast<double>(x + y)) +
            0.5 * std::cos(0.11 * static_cast<double>(z + 2 * x)));
  return f;
}

class ZfpDims : public ::testing::TestWithParam<Dims> {};

TEST_P(ZfpDims, HighRateIsNearLossless) {
  const Dims dims = GetParam();
  const Field f = smooth_field(dims, 1 + dims.count());
  const auto stream = zfp_compress(f.values(), f.dims, 28.0);
  Dims out_dims;
  const auto back = zfp_decompress(stream, &out_dims);
  EXPECT_EQ(out_dims, f.dims);
  const DistortionStats d = distortion(f.values(), back);
  EXPECT_GT(d.psnr_db, 90.0) << dims.to_string();
}

TEST_P(ZfpDims, ModerateRateBoundsError) {
  const Dims dims = GetParam();
  const Field f = smooth_field(dims, 5 + dims.count());
  const auto stream = zfp_compress(f.values(), f.dims, 8.0);
  const auto back = zfp_decompress(stream);
  const DistortionStats d = distortion(f.values(), back);
  // A lone 4-value 1-D block only gets 22 payload bits at rate 8, so its
  // achievable PSNR is genuinely lower.
  EXPECT_GT(d.psnr_db, dims.count() <= 4 ? 15.0 : 30.0) << dims.to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZfpDims,
                         ::testing::Values(Dims{64}, Dims{65}, Dims{4},
                                           Dims{16, 16}, Dims{17, 19},
                                           Dims{16, 16, 16}, Dims{9, 10, 11}));

TEST(Zfp, RateControlsSize) {
  const Field f = smooth_field(Dims{32, 32, 32}, 2);
  size_t prev = 0;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto stream = zfp_compress(f.values(), f.dims, rate);
    EXPECT_GT(stream.size(), prev);
    prev = stream.size();
    // Fixed-rate: size ~ rate * n / 8 + header.
    const double expected = rate * static_cast<double>(f.count()) / 8.0;
    EXPECT_NEAR(static_cast<double>(stream.size()), expected,
                expected * 0.15 + 256);
  }
}

TEST(Zfp, PsnrImprovesMonotonicallyWithRate) {
  const Field f = smooth_field(Dims{32, 32, 32}, 3);
  double prev_psnr = -1;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    const auto back = zfp_decompress(zfp_compress(f.values(), f.dims, rate));
    const double psnr = distortion(f.values(), back).psnr_db;
    EXPECT_GT(psnr, prev_psnr) << "rate=" << rate;
    prev_psnr = psnr;
  }
}

TEST(Zfp, AllZeroBlocksAreCheapAndExact) {
  Field f;
  f.dims = Dims{64, 64};
  f.data.assign(f.dims.count(), 0.0f);
  const auto stream = zfp_compress(f.values(), f.dims, 8.0);
  const auto back = zfp_decompress(stream);
  for (const f32 v : back) EXPECT_EQ(v, 0.0f);
}

TEST(Zfp, HandlesLargeDynamicRange) {
  Field f;
  f.dims = Dims{16, 16, 16};
  f.data.resize(f.dims.count());
  Rng rng(4);
  for (auto& v : f.data)
    v = static_cast<f32>(std::exp(rng.uniform(-20.0, 20.0)) *
                         (rng.below(2) ? 1 : -1));
  const auto back = zfp_decompress(zfp_compress(f.values(), f.dims, 24.0));
  // Block floating point: error is relative to each block's max magnitude.
  for (size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_TRUE(std::isfinite(back[i]));
  }
  EXPECT_GT(distortion(f.values(), back).psnr_db, 40.0);
}

TEST(Zfp, SmoothDataBeatsRoughDataAtSameRate) {
  // The transform decorrelates smooth blocks: PSNR gap should be large.
  const Field smooth = smooth_field(Dims{32, 32, 32}, 5);
  Field rough;
  rough.dims = Dims{32, 32, 32};
  rough.data.resize(rough.dims.count());
  Rng rng(6);
  for (auto& v : rough.data) v = static_cast<f32>(rng.normal());
  const auto ps = distortion(smooth.values(),
                             zfp_decompress(zfp_compress(smooth.values(),
                                                         smooth.dims, 6.0)))
                      .psnr_db;
  const auto pr = distortion(rough.values(),
                             zfp_decompress(zfp_compress(rough.values(),
                                                         rough.dims, 6.0)))
                      .psnr_db;
  EXPECT_GT(ps, pr + 10.0);
}

TEST(Zfp, FixedRateEnablesRandomBlockAccess) {
  // Fixed rate means every block occupies the same bit budget — the
  // property zfp advertises for random access.  Verify by checking the
  // stream size is exactly header + blocks * budget (within word padding).
  const Field f = smooth_field(Dims{64, 64}, 20);
  const double rate = 6.0;
  const auto stream = zfp_compress(f.values(), f.dims, rate);
  const size_t blocks = 16 * 16;
  const size_t budget_bits = static_cast<size_t>(rate * 16);
  const size_t payload_words = (blocks * budget_bits + 63) / 64;
  // header = 4+4(rank/pad)+24(dims)+8(rate)+16(sizes)
  EXPECT_EQ(stream.size(), 56 + payload_words * 8);
}

TEST(Zfp, EdgeReplicationPadsPartialBlocks) {
  // A 5x5 field needs 2x2 blocks with replicated edges; the replicated
  // values must not corrupt the in-range reconstruction.
  Field f;
  f.dims = Dims{5, 5};
  f.data.resize(25);
  for (size_t i = 0; i < 25; ++i) f.data[i] = static_cast<f32>(i);
  const auto back = zfp_decompress(zfp_compress(f.values(), f.dims, 24.0));
  ASSERT_EQ(back.size(), 25u);
  for (size_t i = 0; i < 25; ++i)
    EXPECT_NEAR(back[i], f.data[i], 0.01) << i;
}

TEST(Zfp, ConstantBlocksCostHeaderOnlyDistortion) {
  // A constant field transforms to a single DC coefficient; even a low
  // rate reproduces it nearly exactly.
  Field f;
  f.dims = Dims{32, 32};
  f.data.assign(f.dims.count(), 3.14159f);
  const auto back = zfp_decompress(zfp_compress(f.values(), f.dims, 4.0));
  for (const f32 v : back) EXPECT_NEAR(v, 3.14159f, 1e-3);
}

TEST(Zfp, SequencyOrderIsAPermutation) {
  // Any fixed permutation round-trips, but it must actually BE one.
  for (int rank = 1; rank <= 3; ++rank) {
    const int size = 1 << (2 * rank);
    std::vector<bool> seen(static_cast<size_t>(size), false);
    // Probe through the public API: a delta in coefficient k must survive.
    // (The order table is internal; a full-rate round trip exercises it.)
    Field f;
    f.dims = rank == 1 ? Dims{4} : rank == 2 ? Dims{4, 4} : Dims{4, 4, 4};
    f.data.assign(f.dims.count(), 0.0f);
    for (size_t k = 0; k < f.dims.count(); ++k) {
      std::fill(f.data.begin(), f.data.end(), 0.0f);
      f.data[k] = 1.0f;
      const auto back = zfp_decompress(zfp_compress(f.values(), f.dims, 30.0));
      EXPECT_NEAR(back[k], 1.0f, 0.01) << "rank " << rank << " k " << k;
      seen[k] = true;
    }
    for (const bool b : seen) EXPECT_TRUE(b);
  }
}

TEST(Zfp, RejectsCorruptStream) {
  const Field f = smooth_field(Dims{16, 16}, 7);
  auto stream = zfp_compress(f.values(), f.dims, 8.0);
  stream[0] ^= 0xff;
  EXPECT_THROW(zfp_decompress(stream), FormatError);
  auto truncated = zfp_compress(f.values(), f.dims, 8.0);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(zfp_decompress(truncated), FormatError);
}

TEST(Zfp, CompressorInterfaceReportsFixedRateMode) {
  const auto zfp = make_cuzfp();
  EXPECT_EQ(zfp->mode(), GpuCompressor::Mode::FixedRate);
  const Field f = smooth_field(Dims{32, 32}, 8);
  const RunResult r = zfp->run(f, 8.0);
  EXPECT_NEAR(r.bitrate(), 8.0, 1.5);
  EXPECT_EQ(r.reconstructed.size(), f.count());
  EXPECT_FALSE(r.compression_costs.empty());
}

}  // namespace
}  // namespace fz::bench
