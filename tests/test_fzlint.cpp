// fzlint rule-engine tests: every rule must fire on a violating fixture and
// stay silent on a conforming one, suppressions included.  The fixtures are
// in-memory sources so each case states exactly the construct under test;
// one integration case runs the engine over the repo's real format header
// and layer declarations.
#include "fzlint/lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace {

using fzlint::Config;
using fzlint::Finding;
using fzlint::Report;
using fzlint::SourceFile;

constexpr const char* kLayers = R"(
base:
mid: base
top: mid
tests: *
examples: *
)";

Report lint(std::vector<SourceFile> files, std::string layers = kLayers,
            std::vector<std::string> layout_files = {}) {
  Config config;
  config.layers_text = std::move(layers);
  config.layout_files = std::move(layout_files);
  return fzlint::run_lint(config, files);
}

bool has_finding(const Report& r, const std::string& rule,
                 const std::string& message_part) {
  for (const Finding& f : r.findings)
    if (f.rule == rule && f.message.find(message_part) != std::string::npos)
      return true;
  return false;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- layering ---------------------------------------------------------------

TEST(Layering, ConformingIncludesPass) {
  const Report r = lint({{"src/mid/b.cpp",
                          "#include <vector>\n"
                          "#include \"mid/b.hpp\"\n"
                          "#include \"base/a.hpp\"\n"}});
  EXPECT_TRUE(r.clean()) << r.findings.size();
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLayering), 0);
}

TEST(Layering, BackEdgeReported) {
  const Report r =
      lint({{"src/base/a.cpp", "#include \"mid/b.hpp\"\nint x;\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, fzlint::kRuleLayering);
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayering, "may not include"));
}

TEST(Layering, TransitiveClosureAllowed) {
  // top declares only mid; base is reachable through mid's deps.
  const Report r = lint({{"src/top/t.cpp", "#include \"base/a.hpp\"\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Layering, UndeclaredLayerReported) {
  const Report r = lint({{"src/newdir/x.cpp", "int x;\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayering, "not declared"));
}

TEST(Layering, StarLayerMayIncludeAnything) {
  const Report r = lint({{"tests/t.cpp",
                          "#include \"mid/b.hpp\"\n"
                          "#include \"top/t.hpp\"\n"
                          "#include \"base/a.hpp\"\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Layering, AngledIncludesAreNotLayerEdges) {
  const Report r = lint({{"src/base/a.cpp", "#include <mid/b.hpp>\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Layering, SameDirectoryIncludesAreNotLayerEdges) {
  const Report r = lint({{"src/base/a.cpp", "#include \"helpers.hpp\"\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Layering, CycleInDeclarationIsAnError) {
  const Report r = lint({{"src/base/a.cpp", "int x;\n"}},
                        "a: b\nb: a\nbase:\n");
  EXPECT_FALSE(r.clean());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("cycle"), std::string::npos);
}

TEST(Layering, UndeclaredDependencyIsAnError) {
  const Report r = lint({}, "base: ghost\n");
  EXPECT_FALSE(r.clean());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("undeclared"), std::string::npos);
}

TEST(Layering, AllowSuppressesBackEdge) {
  const Report r = lint(
      {{"src/base/a.cpp",
        "#include \"mid/b.hpp\"  // fzlint:allow(layering)\nint x;\n"}});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1);
}

// ---- lock discipline --------------------------------------------------------

constexpr const char* kHot = "// fzlint:hot-path\n";

TEST(LockDiscipline, AllocationUnderLockReported) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::lock_guard<std::mutex> lock(mu);\n"
                              "  auto* p = new int[4];\n"
                              "  auto q = std::make_shared<int>(7);\n"
                              "  items.push_back(1);\n"
                              "}\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLockDiscipline), 3);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "'new' allocates"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "make_shared"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "push_back"));
}

TEST(LockDiscipline, UnannotatedFileIsIgnored) {
  const Report r = lint({{"src/base/a.cpp",
                          "void f() {\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  auto* p = new int[4];\n"
                          "}\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(LockDiscipline, AllocationOutsideLockScopePasses) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  {\n"
                              "    std::lock_guard<std::mutex> lock(mu);\n"
                              "    counter += 1;\n"
                              "  }\n"
                              "  auto* p = new int[4];\n"
                              "  items.push_back(1);\n"
                              "}\n"}});
  EXPECT_TRUE(r.clean()) << r.findings[0].message;
}

TEST(LockDiscipline, BlockingWaitReported) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::unique_lock<std::mutex> lock(mu);\n"
                              "  cv.wait(lock);\n"
                              "  worker.join();\n"
                              "  std::this_thread::sleep_for(1ms);\n"
                              "}\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLockDiscipline), 3);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "'.wait()'"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "'.join()'"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "sleep_for"));
}

TEST(LockDiscipline, SpanConstructionReported) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::scoped_lock lock(mu);\n"
                              "  telemetry::Span span(sink, \"stage\");\n"
                              "}\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLockDiscipline), 1);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLockDiscipline, "Span"));
}

TEST(LockDiscipline, FindingNamesTheLockLine) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::lock_guard<std::mutex> lock(mu);\n"
                              "  items.resize(9);\n"
                              "}\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_NE(r.findings[0].message.find("line 3"), std::string::npos);
}

TEST(LockDiscipline, AllowOnPrecedingLineSuppresses) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::lock_guard<std::mutex> lock(mu);\n"
                              "  // fzlint:allow(lock-discipline)\n"
                              "  items.push_back(1);\n"
                              "}\n"}});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LockDiscipline, AllowForOtherRuleDoesNotSuppress) {
  const Report r = lint({{"src/base/a.cpp",
                          std::string(kHot) +
                              "void f() {\n"
                              "  std::lock_guard<std::mutex> lock(mu);\n"
                              "  items.push_back(1);  // fzlint:allow(hygiene)\n"
                              "}\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLockDiscipline), 1);
  EXPECT_EQ(r.suppressed, 0);
}

// ---- layout audit -----------------------------------------------------------

constexpr const char* kGoodLayout = R"(
#pragma pack(push, 1)
struct Rec {
  u32 magic;
  u16 version;
  u8 pad[2];
  u64 nx, ny;
};
#pragma pack(pop)
static_assert(std::is_trivially_copyable_v<Rec>);
static_assert(sizeof(Rec) == 24);
static_assert(offsetof(Rec, magic) == 0);
static_assert(offsetof(Rec, version) == 4);
static_assert(offsetof(Rec, pad) == 6);
static_assert(offsetof(Rec, nx) == 8);
static_assert(offsetof(Rec, ny) == 16);
)";

TEST(LayoutAudit, MatchingAssertsPass) {
  const Report r =
      lint({{"src/base/format.hpp", kGoodLayout}}, kLayers,
           {"src/base/format.hpp"});
  EXPECT_TRUE(r.clean()) << r.findings[0].message;
}

TEST(LayoutAudit, FileNotListedIsIgnored) {
  // Same struct with no asserts at all, but the file is not a declared
  // on-disk-format header.
  const Report r = lint({{"src/base/other.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 magic; };\n"
                          "#pragma pack(pop)\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(LayoutAudit, MissingAssertsReported) {
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 magic; u16 version; };\n"
                          "#pragma pack(pop)\n"}},
                        kLayers, {"src/base/format.hpp"});
  // sizeof + trivially-copyable + one offsetof per field.
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLayoutAudit), 4);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayoutAudit, "sizeof(Rec) == 6"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayoutAudit,
                          "offsetof(Rec, version) == 4"));
  EXPECT_TRUE(
      has_finding(r, fzlint::kRuleLayoutAudit, "is_trivially_copyable_v"));
}

TEST(LayoutAudit, MismatchedSizeReported) {
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 magic; };\n"
                          "#pragma pack(pop)\n"
                          "static_assert(std::is_trivially_copyable_v<Rec>);\n"
                          "static_assert(sizeof(Rec) == 8);\n"
                          "static_assert(offsetof(Rec, magic) == 0);\n"}},
                        kLayers, {"src/base/format.hpp"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].message.find("says 8"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("4 bytes"), std::string::npos);
  EXPECT_EQ(r.findings[0].line, 5);
}

TEST(LayoutAudit, MismatchedOffsetReported) {
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 a; u32 b; };\n"
                          "#pragma pack(pop)\n"
                          "static_assert(std::is_trivially_copyable_v<Rec>);\n"
                          "static_assert(sizeof(Rec) == 8);\n"
                          "static_assert(offsetof(Rec, a) == 0);\n"
                          "static_assert(offsetof(Rec, b) == 6);\n"}},
                        kLayers, {"src/base/format.hpp"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].message.find("says 6"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("byte 4"), std::string::npos);
}

TEST(LayoutAudit, StaleFieldAssertReported) {
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 a; };\n"
                          "#pragma pack(pop)\n"
                          "static_assert(std::is_trivially_copyable_v<Rec>);\n"
                          "static_assert(sizeof(Rec) == 4);\n"
                          "static_assert(offsetof(Rec, a) == 0);\n"
                          "static_assert(offsetof(Rec, removed) == 4);\n"}},
                        kLayers, {"src/base/format.hpp"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayoutAudit,
                          "declaration does not have"));
}

TEST(LayoutAudit, UnpackedStructsAreNotAudited) {
  const Report r = lint(
      {{"src/base/format.hpp", "struct InMemory { u32 a; void* p; };\n"}},
      kLayers, {"src/base/format.hpp"});
  EXPECT_TRUE(r.clean());
}

TEST(LayoutAudit, NonScalarMemberReported) {
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec { u32 a; SomeClass c; };\n"
                          "#pragma pack(pop)\n"}},
                        kLayers, {"src/base/format.hpp"});
  EXPECT_TRUE(has_finding(r, fzlint::kRuleLayoutAudit,
                          "not a fixed-width scalar"));
}

TEST(LayoutAudit, DefaultMemberInitializersAreSkipped) {
  // Wire-protocol headers initialize their magic/version members; the
  // initializer expression must not be mistaken for a member type.
  const Report r = lint({{"src/base/format.hpp",
                          "#pragma pack(push, 1)\n"
                          "struct Rec {\n"
                          "  u32 magic = kMagic;\n"
                          "  u16 version = 1, flags = Flag{};\n"
                          "  u64 count = compute(1, 2);\n"
                          "};\n"
                          "#pragma pack(pop)\n"
                          "static_assert(std::is_trivially_copyable_v<Rec>);\n"
                          "static_assert(sizeof(Rec) == 16);\n"
                          "static_assert(offsetof(Rec, magic) == 0);\n"
                          "static_assert(offsetof(Rec, version) == 4);\n"
                          "static_assert(offsetof(Rec, flags) == 6);\n"
                          "static_assert(offsetof(Rec, count) == 8);\n"}},
                        kLayers, {"src/base/format.hpp"});
  EXPECT_TRUE(r.clean()) << (r.findings.empty() ? "errors only"
                                                : r.findings[0].message);
}

TEST(LayoutAudit, RealFormatHeaderIsPinned) {
  // The repo's actual on-disk headers, checked with the repo's actual
  // layer declarations: the shipped asserts must agree with the shipped
  // structs — both the stream format and the fzd wire protocol.
  const std::string root = FZ_SOURCE_ROOT;
  Config config;
  config.layers_text = slurp(root + "/tools/fzlint_layers.txt");
  config.layout_files = {"src/core/format.hpp", "src/service/wire.hpp"};
  const std::vector<SourceFile> files = {
      {"src/core/format.hpp", slurp(root + "/src/core/format.hpp")},
      {"src/service/wire.hpp", slurp(root + "/src/service/wire.hpp")}};
  const Report r = fzlint::run_lint(config, files);
  EXPECT_TRUE(r.clean()) << (r.findings.empty()
                                 ? "errors only"
                                 : r.findings[0].message);
}

// ---- hygiene ----------------------------------------------------------------

TEST(Hygiene, BannedCallsReported) {
  const Report r = lint({{"src/base/a.cpp",
                          "void f() {\n"
                          "  void* p = malloc(10);\n"
                          "  printf(\"x\");\n"
                          "  int v = rand();\n"
                          "}\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleHygiene), 3);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleHygiene, "'malloc()'"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleHygiene, "'printf()'"));
  EXPECT_TRUE(has_finding(r, fzlint::kRuleHygiene, "'rand()'"));
}

TEST(Hygiene, OutsideSrcIsExempt) {
  const Report r = lint({{"examples/demo.cpp",
                          "void f() { printf(\"x\"); }\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Hygiene, RawStdThreadReported) {
  const Report r =
      lint({{"src/base/a.cpp", "std::thread t([] { work(); });\n"}});
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleHygiene), 1);
  EXPECT_TRUE(has_finding(r, fzlint::kRuleHygiene, "std::thread"));
}

TEST(Hygiene, ThreadMetadataAllowed) {
  const Report r = lint(
      {{"src/base/a.cpp",
        "const unsigned n = std::thread::hardware_concurrency();\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Hygiene, ThreadPoolImplementationIsExempt) {
  const Report r = lint({{"src/common/thread_pool.cpp",
                          "std::thread t([] { work(); });\n"}},
                        "common:\n");
  EXPECT_TRUE(r.clean());
}

TEST(Hygiene, TokensInStringsAndCommentsIgnored) {
  const Report r = lint({{"src/base/a.cpp",
                          "// calls malloc( and printf( and rand()\n"
                          "const char* s = \"malloc(10) printf(x)\";\n"
                          "const char* raw = R\"(rand() malloc())\";\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(Hygiene, AllowSuppresses) {
  const Report r = lint(
      {{"src/base/a.cpp",
        "void* p = malloc(10);  // fzlint:allow(hygiene)\n"}});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1);
}

// ---- reporting --------------------------------------------------------------

TEST(Reporting, PerRuleSummaryCountsEveryRule) {
  const Report r = lint({{"src/base/a.cpp", "void* p = malloc(4);\n"}});
  EXPECT_EQ(r.per_rule.size(), 4u);
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleHygiene), 1);
  EXPECT_EQ(r.per_rule.at(fzlint::kRuleLayering), 0);
}

TEST(Reporting, TextReportNamesFileLineAndRule) {
  const Report r = lint({{"src/base/a.cpp", "void* p = malloc(4);\n"}});
  std::ostringstream os;
  fzlint::write_text_report(r, os);
  EXPECT_NE(os.str().find("src/base/a.cpp:1: [hygiene]"), std::string::npos);
  EXPECT_NE(os.str().find("FAILED"), std::string::npos);
}

TEST(Reporting, CleanTextReportSaysClean) {
  const Report r = lint({});
  std::ostringstream os;
  fzlint::write_text_report(r, os);
  EXPECT_NE(os.str().find("clean"), std::string::npos);
}

TEST(Reporting, JsonReportCarriesFindingsAndSummary) {
  const Report r = lint(
      {{"src/base/a.cpp",
        "void* p = malloc(4);\nint q = rand();  // fzlint:allow(hygiene)\n"}});
  std::ostringstream os;
  fzlint::write_json_report(r, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rule\": \"hygiene\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/base/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"hygiene\": 1"), std::string::npos);
}

TEST(Reporting, FindingsAreSortedByFileThenLine) {
  const Report r = lint({{"src/base/b.cpp", "void* p = malloc(4);\n"},
                         {"src/base/a.cpp",
                          "int x;\nvoid* p = malloc(4);\n"
                          "void* q = calloc(1, 4);\n"}});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/base/a.cpp");
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_EQ(r.findings[1].line, 3);
  EXPECT_EQ(r.findings[2].file, "src/base/b.cpp");
}

}  // namespace
