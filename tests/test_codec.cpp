#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

// Program-wide allocation counter for the steady-state test: every operator
// new variant is replaced, including the aligned array forms AlignedBuffer
// uses, so `g_alloc_count` sees every heap allocation in this binary.
namespace {

std::atomic<size_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t n, std::align_val_t al) {
  ++g_alloc_count;
  const auto a = static_cast<std::size_t>(al);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, padded != 0 ? padded : a)) return p;
  throw std::bad_alloc{};
}

void* counted_alloc_nothrow(std::size_t n) noexcept {
  ++g_alloc_count;
  return std::malloc(n != 0 ? n : 1);
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, al);
}
// The nothrow forms must be replaced too: the library pairs
// operator new(n, nothrow) with the sized operator delete (e.g.
// std::stable_sort's temporary buffer) — mixing the default nothrow new
// with our free() is an alloc-dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fz {
namespace {

Field noisy_field(Dims dims, u64 seed) {
  Field f;
  f.dataset = "synthetic";
  f.name = "noisy";
  f.dims = dims;
  f.data.resize(dims.count());
  Rng rng(seed);
  for (size_t i = 0; i < f.data.size(); ++i)
    f.data[i] = static_cast<f32>(
        100.0 + 40.0 * std::sin(static_cast<double>(i) * 0.013) +
        rng.uniform(-0.3, 0.3));
  return f;
}

TEST(Codec, MatchesOneShotApiByteForByte) {
  const Field f = noisy_field(Dims{64, 48, 5}, 11);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);

  const FzCompressed one_shot = fz_compress(f.values(), f.dims, params);

  Codec codec(params);
  const FzCompressed first = codec.compress(f.values(), f.dims);
  const FzCompressed second = codec.compress(f.values(), f.dims);

  EXPECT_EQ(first.bytes, one_shot.bytes);
  EXPECT_EQ(second.bytes, one_shot.bytes);  // reuse changes nothing
  EXPECT_EQ(first.stats.nonzero_blocks, one_shot.stats.nonzero_blocks);

  const FzDecompressed via_codec = codec.decompress(first.bytes);
  const FzDecompressed via_api = fz_decompress(one_shot.bytes);
  EXPECT_EQ(via_codec.data, via_api.data);
  EXPECT_EQ(via_codec.dims, f.dims);
}

TEST(Codec, SteadyStateDoesNotAllocate) {
  const Field f = noisy_field(Dims{96, 80, 4}, 23);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  Codec codec(params);

  // Warm-up: every scratch buffer for both paths is a pool miss once.
  const FzCompressed c = codec.compress(f.values(), f.dims);
  std::vector<f32> out(f.data.size());
  codec.decompress_into(c.bytes, out);
  const auto warm = codec.pool().stats();
  EXPECT_GT(warm.misses, 0u);
  EXPECT_EQ(warm.leased_buffers, 0u);  // all scratch returned after the runs

  // Steady state: same shapes -> pure pool hits, zero new allocations.
  for (int round = 0; round < 3; ++round) {
    const FzCompressed again = codec.compress(f.values(), f.dims);
    EXPECT_EQ(again.bytes, c.bytes);
    codec.decompress_into(again.bytes, out);
  }
  const auto steady = codec.pool().stats();
  EXPECT_EQ(steady.misses, warm.misses) << "steady-state run hit the heap";
  EXPECT_GT(steady.hits, warm.hits);
  EXPECT_EQ(steady.allocated_bytes, warm.allocated_bytes);
  EXPECT_EQ(steady.peak_allocated_bytes, warm.peak_allocated_bytes);
  EXPECT_TRUE(error_bounded(f.values(), out, c.stats.abs_eb));

  // The pool-stats check above only proves scratch buffers recycle; the
  // global counter proves the whole decompress path (header parse, stage
  // graph, disabled telemetry hooks) performs literally zero heap
  // allocations once warm.  The OpenMP runtime reuses its worker pool; the
  // no-OpenMP thread_crew fallback spawns std::threads per parallel region,
  // so the strict assertion is OpenMP-only.
  EXPECT_GT(g_alloc_count.load(), 0u);  // the counter is actually wired in
  const size_t before = g_alloc_count.load();
  for (int round = 0; round < 3; ++round) codec.decompress_into(c.bytes, out);
#if defined(FZ_HAVE_OPENMP)
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state decompress_into allocated";
#else
  EXPECT_GE(g_alloc_count.load(), before);
#endif

  // The loop above rides the fused decompress graph (the default); the
  // classic staged graph must stay allocation-free in steady state too.
  FzParams unfused = params;
  unfused.fused_decompress = false;
  Codec classic(unfused);
  for (int round = 0; round < 3; ++round)  // warm the classic scratch set
    classic.decompress_into(c.bytes, out);
  const auto classic_warm = classic.pool().stats();
  const size_t classic_before = g_alloc_count.load();
  for (int round = 0; round < 3; ++round) classic.decompress_into(c.bytes, out);
  const auto classic_steady = classic.pool().stats();
  EXPECT_EQ(classic_steady.misses, classic_warm.misses)
      << "classic decompress steady state hit the heap";
#if defined(FZ_HAVE_OPENMP)
  EXPECT_EQ(g_alloc_count.load(), classic_before)
      << "steady-state classic decompress_into allocated";
#else
  EXPECT_GE(g_alloc_count.load(), classic_before);
#endif
  EXPECT_TRUE(error_bounded(f.values(), out, c.stats.abs_eb));
}

TEST(Codec, SteadyStateHoldsForV1AndPointwiseAndF64) {
  const Field f = noisy_field(Dims{40, 30, 3}, 31);
  std::vector<f64> wide(f.data.begin(), f.data.end());

  FzParams v1;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  v1.eb = ErrorBound::absolute(1e-2);
  FzParams pw;
  pw.eb = ErrorBound::pointwise_relative(1e-3);

  Codec codec_v1(v1), codec_pw(pw), codec_f64;
  const auto c1 = codec_v1.compress(f.values(), f.dims);
  const auto c2 = codec_pw.compress(f.values(), f.dims);
  const auto c3 = codec_f64.compress(std::span<const f64>{wide}, f.dims);
  const auto m1 = codec_v1.pool().stats().misses;
  const auto m2 = codec_pw.pool().stats().misses;
  const auto m3 = codec_f64.pool().stats().misses;

  EXPECT_EQ(codec_v1.compress(f.values(), f.dims).bytes, c1.bytes);
  EXPECT_EQ(codec_pw.compress(f.values(), f.dims).bytes, c2.bytes);
  EXPECT_EQ(codec_f64.compress(std::span<const f64>{wide}, f.dims).bytes,
            c3.bytes);
  EXPECT_EQ(codec_v1.pool().stats().misses, m1);
  EXPECT_EQ(codec_pw.pool().stats().misses, m2);
  EXPECT_EQ(codec_f64.pool().stats().misses, m3);
}

TEST(Codec, DecompressIntoValidatesOutputSize) {
  const Field f = noisy_field(Dims{2048}, 5);
  FzParams params;
  params.eb = ErrorBound::absolute(1e-2);
  Codec codec(params);
  const FzCompressed c = codec.compress(f.values(), f.dims);

  std::vector<f32> wrong(f.data.size() - 1);
  EXPECT_THROW(codec.decompress_into(c.bytes, wrong), FormatError);
  std::vector<f64> wrong_type(f.data.size());
  EXPECT_THROW(codec.decompress_into(c.bytes, wrong_type), FormatError);

  std::vector<f32> right(f.data.size());
  const Dims dims = codec.decompress_into(c.bytes, right);
  EXPECT_EQ(dims, f.dims);
  EXPECT_TRUE(error_bounded(f.values(), right, c.stats.abs_eb));
}

TEST(Codec, ScratchIsReleasedEvenWhenARunThrows) {
  Codec codec;
  const Field f = noisy_field(Dims{4096}, 17);
  const FzCompressed c = codec.compress(f.values(), f.dims);

  std::vector<u8> clipped(c.bytes.begin(), c.bytes.end() - 8);
  std::vector<f32> out(f.data.size());
  EXPECT_THROW(codec.decompress_into(clipped, out), FormatError);
  EXPECT_EQ(codec.pool().stats().leased_buffers, 0u);

  // The codec stays usable after the failure.
  codec.decompress_into(c.bytes, out);
  EXPECT_TRUE(error_bounded(f.values(), out, c.stats.abs_eb));
}

TEST(ChunkedParallel, OutputIsIndependentOfWorkerCount) {
  const Field f = noisy_field(Dims{48, 40, 24}, 29);
  ChunkedParams serial;
  serial.base.eb = ErrorBound::relative(1e-3);
  serial.num_chunks = 8;
  serial.max_parallelism = 1;
  ChunkedParams parallel = serial;
  parallel.max_parallelism = 0;  // all hardware threads

  const ChunkedCompressed cs = fz_compress_chunked(f.values(), f.dims, serial);
  const ChunkedCompressed cp =
      fz_compress_chunked(f.values(), f.dims, parallel);
  EXPECT_EQ(cs.bytes, cp.bytes);
  EXPECT_EQ(cs.num_chunks, cp.num_chunks);
  EXPECT_EQ(cs.stats.nonzero_blocks, cp.stats.nonzero_blocks);

  const FzDecompressed ds = fz_decompress_chunked(cs.bytes, 1);
  const FzDecompressed dp = fz_decompress_chunked(cs.bytes, 0);
  EXPECT_EQ(ds.data, dp.data);
  EXPECT_EQ(ds.dims, dp.dims);
  EXPECT_TRUE(error_bounded(f.values(), dp.data, cs.stats.abs_eb));
}

TEST(ChunkedParallel, WorkerCountAboveChunkCountIsFine) {
  const Field f = noisy_field(Dims{2048}, 3);
  ChunkedParams params;
  params.base.eb = ErrorBound::absolute(1e-2);
  params.num_chunks = 2;
  params.max_parallelism = 64;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  const FzDecompressed d = fz_decompress_chunked(c.bytes, 64);
  EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb));
}

TEST(Codec, FusedGraphMatchesUnfusedByteForByte) {
  // ISSUE PR3: the fused tile pipeline must emit *exactly* the bytes the
  // unfused five-stage graph emits, for every rank, dtype and SIMD tier.
  const Dims cases[] = {Dims{4113}, Dims{129, 65}, Dims{24, 17, 9}};
  for (const Dims dims : cases) {
    const Field f = noisy_field(dims, 5 + dims.count());
    const std::vector<f64> wide(f.data.begin(), f.data.end());
    for (const SimdDispatch d :
         {SimdDispatch::Auto, SimdDispatch::Scalar, SimdDispatch::SSE2,
          SimdDispatch::AVX2}) {
      FzParams unfused;
      unfused.eb = ErrorBound::relative(1e-3);
      unfused.fused_host_graph = false;
      unfused.simd = d;
      FzParams fused = unfused;
      fused.fused_host_graph = true;

      Codec cu(unfused), cf(fused);
      const auto u32s = cu.compress(f.values(), f.dims);
      const auto f32s = cf.compress(f.values(), f.dims);
      ASSERT_EQ(u32s.bytes, f32s.bytes) << "f32 dims " << dims.x;
      EXPECT_EQ(u32s.stats.saturated, f32s.stats.saturated);

      const auto u64s = cu.compress(std::span<const f64>{wide}, f.dims);
      const auto f64s = cf.compress(std::span<const f64>{wide}, f.dims);
      ASSERT_EQ(u64s.bytes, f64s.bytes) << "f64 dims " << dims.x;
    }
  }
}

TEST(Codec, FusedGraphMatchesUnfusedWithTransformsAndV1Rejected) {
  // Log transform feeds the fused stage from the transformed buffer; a V1
  // quantization request with the fused graph is a configuration error
  // caught at validate() time (the fused tile body is V2-only).
  const Field f = noisy_field(Dims{96, 40}, 41);
  FzParams base;
  base.eb = ErrorBound::pointwise_relative(1e-3);
  FzParams fused = base;
  fused.fused_host_graph = true;
  FzParams unfused = base;
  unfused.fused_host_graph = false;
  Codec cf(fused), cu(unfused);
  EXPECT_EQ(cf.compress(f.values(), f.dims).bytes,
            cu.compress(f.values(), f.dims).bytes);

  FzParams v1 = fused;
  v1.eb = ErrorBound::relative(1e-3);
  v1.quant = QuantVersion::V1Original;
  EXPECT_THROW(Codec{v1}, ParamError);
  FzParams v1u = v1;
  v1u.fused_host_graph = false;
  Codec cv1u(v1u);
  const auto a = cv1u.compress(f.values(), f.dims);
  const FzDecompressed rt = cv1u.decompress(a.bytes);
  EXPECT_TRUE(error_bounded(f.values(), rt.data, a.stats.abs_eb));
}

TEST(Codec, F32FastQuantKeepsStreamsIdenticalAndBounded) {
  // The f32 fast-quant path's margin test routes boundary-adjacent values
  // through the exact kernel, so the compressed stream is byte-identical
  // to the default path; reconstruction may differ by an f32 ulp but must
  // stay inside the bound.
  const Field f = noisy_field(Dims{64, 48, 5}, 53);
  double max_abs = 0;
  for (const f32 v : f.data) max_abs = std::max(max_abs, std::fabs(double{v}));
  for (const double rel : {1e-2, 1e-3, 1e-4}) {
    FzParams slow;
    slow.eb = ErrorBound::relative(rel);
    FzParams fast = slow;
    fast.f32_fast_quant = true;
    Codec cs(slow), cf(fast);
    const auto a = cs.compress(f.values(), f.dims);
    const auto b = cf.compress(f.values(), f.dims);
    ASSERT_EQ(a.bytes, b.bytes) << "rel=" << rel;

    // The fast dequant's extra rounding is relative to the value itself
    // (float(2eb) carries a 2^-24 relative error): reconstructions differ
    // from the default path by f32 representation noise only.
    const FzDecompressed slow_rt = cs.decompress(b.bytes);
    const FzDecompressed fast_rt = cf.decompress(b.bytes);
    for (size_t i = 0; i < f.data.size(); ++i)
      ASSERT_NEAR(fast_rt.data[i], slow_rt.data[i], max_abs * 0x1p-22)
          << "rel=" << rel << " i=" << i;
    if (b.stats.saturated == 0) {
      EXPECT_TRUE(error_bounded(f.values(), fast_rt.data,
                                b.stats.abs_eb + max_abs * 0x1p-22))
          << "rel=" << rel;
    }
  }
}

}  // namespace
}  // namespace fz
