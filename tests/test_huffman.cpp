#include "common/error.hpp"
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "substrate/histogram.hpp"
#include "substrate/huffman.hpp"

namespace fz {
namespace {

std::vector<u16> geometric_symbols(size_t n, u64 seed, u16 num_bins) {
  // Geometric-ish distribution centred at num_bins/2 — resembles shifted
  // quantization codes.
  Rng rng(seed);
  std::vector<u16> s(n);
  for (auto& v : s) {
    const double g = rng.normal(0.0, 3.0);
    i32 code = static_cast<i32>(num_bins / 2) + static_cast<i32>(std::lround(g));
    code = std::clamp<i32>(code, 0, num_bins - 1);
    v = static_cast<u16>(code);
  }
  return s;
}

TEST(HuffmanCodebook, KraftInequalityHolds) {
  const auto syms = geometric_symbols(20000, 3, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const auto book = HuffmanCodebook::build(hist);
  double kraft = 0;
  for (const u8 l : book.lengths)
    if (l != 0) kraft += std::ldexp(1.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(HuffmanCodebook, CanonicalCodesArePrefixFree) {
  const auto syms = geometric_symbols(5000, 4, 256);
  const auto hist = histogram<u16>(syms, 256);
  const auto book = HuffmanCodebook::build(hist);
  for (size_t a = 0; a < book.num_symbols(); ++a) {
    if (book.lengths[a] == 0) continue;
    for (size_t b = 0; b < book.num_symbols(); ++b) {
      if (a == b || book.lengths[b] == 0) continue;
      if (book.lengths[a] > book.lengths[b]) continue;
      // code(a) must not be a prefix of code(b).
      const u64 prefix = book.codes[b] >> (book.lengths[b] - book.lengths[a]);
      EXPECT_FALSE(prefix == book.codes[a] && book.lengths[a] < book.lengths[b])
          << "symbol " << a << " prefixes " << b;
    }
  }
}

TEST(HuffmanCodebook, SingleSymbolGetsOneBit) {
  std::vector<u64> hist(16, 0);
  hist[7] = 100;
  const auto book = HuffmanCodebook::build(hist);
  EXPECT_EQ(book.lengths[7], 1);
  for (size_t s = 0; s < 16; ++s)
    if (s != 7) {
      EXPECT_EQ(book.lengths[s], 0);
    }
}

TEST(HuffmanCodebook, EmptyHistogram) {
  std::vector<u64> hist(16, 0);
  const auto book = HuffmanCodebook::build(hist);
  EXPECT_EQ(book.max_length(), 0);
}

TEST(Huffman, RoundTripGeometric) {
  const auto syms = geometric_symbols(100000, 5, 1024);
  const auto stream = huffman_compress(syms, 1024);
  const auto back = huffman_decompress(stream);
  EXPECT_EQ(back, syms);
}

TEST(Huffman, RoundTripUniform) {
  Rng rng(6);
  std::vector<u16> syms(50000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(700));
  const auto stream = huffman_compress(syms, 1024);
  EXPECT_EQ(huffman_decompress(stream), syms);
}

TEST(Huffman, RoundTripSingleDistinctSymbol) {
  std::vector<u16> syms(5000, 321);
  const auto stream = huffman_compress(syms, 1024);
  EXPECT_EQ(huffman_decompress(stream), syms);
  // Degenerate stream should be tiny: ~1 bit/symbol plus the table.
  EXPECT_LT(stream.size(), 5000 / 8 + 1200 + 64);
}

TEST(Huffman, RoundTripShortInputs) {
  for (const size_t n : {1u, 2u, 3u, 7u, 4095u, 4096u, 4097u}) {
    auto syms = geometric_symbols(n, 100 + n, 64);
    const auto stream = huffman_compress(syms, 64);
    EXPECT_EQ(huffman_decompress(stream), syms) << "n=" << n;
  }
}

TEST(Huffman, SkewedDataCompressesNearEntropy) {
  const auto syms = geometric_symbols(200000, 8, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const double h = shannon_entropy(hist);
  const auto stream = huffman_compress(syms, 1024);
  const double bits_per_sym =
      static_cast<double>(stream.size() - 1024 - 16) * 8 / syms.size();
  EXPECT_LT(bits_per_sym, h + 1.0);  // within 1 bit of entropy
  EXPECT_GE(bits_per_sym, h - 0.01);
}

TEST(Huffman, ChunkSizeDoesNotChangeContent) {
  const auto syms = geometric_symbols(30000, 9, 512);
  std::vector<u64> hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  for (const size_t chunk : {256u, 1024u, 65536u}) {
    const auto enc = huffman_encode(syms, book, chunk);
    EXPECT_EQ(huffman_decode(enc, book), syms) << "chunk=" << chunk;
  }
}

TEST(Huffman, RejectsCorruptStream) {
  auto syms = geometric_symbols(1000, 10, 64);
  auto stream = huffman_compress(syms, 64);
  stream.resize(stream.size() / 2);  // truncate payload
  EXPECT_THROW(huffman_decompress(stream), FormatError);
}

TEST(Huffman, CodebookBuildCostGrowsWithBins) {
  EXPECT_GT(codebook_build_serial_ns(1024), codebook_build_serial_ns(256));
  EXPECT_GT(codebook_build_serial_ns(1024), 1e5);  // non-trivial serial phase
}

TEST(Entropy, KnownValues) {
  const std::vector<u64> uniform4{10, 10, 10, 10};
  EXPECT_NEAR(shannon_entropy(uniform4), 2.0, 1e-12);
  const std::vector<u64> one{42};
  EXPECT_NEAR(shannon_entropy(one), 0.0, 1e-12);
}

}  // namespace
}  // namespace fz
