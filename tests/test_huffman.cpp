#include "common/error.hpp"
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "substrate/histogram.hpp"
#include "substrate/huffman.hpp"

namespace fz {
namespace {

std::vector<u16> geometric_symbols(size_t n, u64 seed, u16 num_bins) {
  // Geometric-ish distribution centred at num_bins/2 — resembles shifted
  // quantization codes.
  Rng rng(seed);
  std::vector<u16> s(n);
  for (auto& v : s) {
    const double g = rng.normal(0.0, 3.0);
    i32 code = static_cast<i32>(num_bins / 2) + static_cast<i32>(std::lround(g));
    code = std::clamp<i32>(code, 0, num_bins - 1);
    v = static_cast<u16>(code);
  }
  return s;
}

TEST(HuffmanCodebook, KraftInequalityHolds) {
  const auto syms = geometric_symbols(20000, 3, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const auto book = HuffmanCodebook::build(hist);
  double kraft = 0;
  for (const u8 l : book.lengths)
    if (l != 0) kraft += std::ldexp(1.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(HuffmanCodebook, CanonicalCodesArePrefixFree) {
  const auto syms = geometric_symbols(5000, 4, 256);
  const auto hist = histogram<u16>(syms, 256);
  const auto book = HuffmanCodebook::build(hist);
  for (size_t a = 0; a < book.num_symbols(); ++a) {
    if (book.lengths[a] == 0) continue;
    for (size_t b = 0; b < book.num_symbols(); ++b) {
      if (a == b || book.lengths[b] == 0) continue;
      if (book.lengths[a] > book.lengths[b]) continue;
      // code(a) must not be a prefix of code(b).
      const u64 prefix = book.codes[b] >> (book.lengths[b] - book.lengths[a]);
      EXPECT_FALSE(prefix == book.codes[a] && book.lengths[a] < book.lengths[b])
          << "symbol " << a << " prefixes " << b;
    }
  }
}

TEST(HuffmanCodebook, SingleSymbolGetsOneBit) {
  std::vector<u64> hist(16, 0);
  hist[7] = 100;
  const auto book = HuffmanCodebook::build(hist);
  EXPECT_EQ(book.lengths[7], 1);
  for (size_t s = 0; s < 16; ++s)
    if (s != 7) {
      EXPECT_EQ(book.lengths[s], 0);
    }
}

TEST(HuffmanCodebook, EmptyHistogram) {
  std::vector<u64> hist(16, 0);
  const auto book = HuffmanCodebook::build(hist);
  EXPECT_EQ(book.max_length(), 0);
}

TEST(Huffman, RoundTripGeometric) {
  const auto syms = geometric_symbols(100000, 5, 1024);
  const auto stream = huffman_compress(syms, 1024);
  const auto back = huffman_decompress(stream);
  EXPECT_EQ(back, syms);
}

TEST(Huffman, RoundTripUniform) {
  Rng rng(6);
  std::vector<u16> syms(50000);
  for (auto& s : syms) s = static_cast<u16>(rng.below(700));
  const auto stream = huffman_compress(syms, 1024);
  EXPECT_EQ(huffman_decompress(stream), syms);
}

TEST(Huffman, RoundTripSingleDistinctSymbol) {
  std::vector<u16> syms(5000, 321);
  const auto stream = huffman_compress(syms, 1024);
  EXPECT_EQ(huffman_decompress(stream), syms);
  // Degenerate stream should be tiny: ~1 bit/symbol plus the table.
  EXPECT_LT(stream.size(), 5000 / 8 + 1200 + 64);
}

TEST(Huffman, RoundTripShortInputs) {
  for (const size_t n : {1u, 2u, 3u, 7u, 4095u, 4096u, 4097u}) {
    auto syms = geometric_symbols(n, 100 + n, 64);
    const auto stream = huffman_compress(syms, 64);
    EXPECT_EQ(huffman_decompress(stream), syms) << "n=" << n;
  }
}

TEST(Huffman, SkewedDataCompressesNearEntropy) {
  const auto syms = geometric_symbols(200000, 8, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const double h = shannon_entropy(hist);
  const auto stream = huffman_compress(syms, 1024);
  const double bits_per_sym =
      static_cast<double>(stream.size() - 1024 - 16) * 8 / syms.size();
  EXPECT_LT(bits_per_sym, h + 1.0);  // within 1 bit of entropy
  EXPECT_GE(bits_per_sym, h - 0.01);
}

TEST(Huffman, ChunkSizeDoesNotChangeContent) {
  const auto syms = geometric_symbols(30000, 9, 512);
  std::vector<u64> hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  for (const size_t chunk : {256u, 1024u, 65536u}) {
    const auto enc = huffman_encode(syms, book, chunk);
    EXPECT_EQ(huffman_decode(enc, book), syms) << "chunk=" << chunk;
  }
}

TEST(HuffmanGap, PayloadBytesIdenticalToLegacyForEverySegmentSize) {
  // The gap array is pure metadata: the v2 stream's chunk payloads must be
  // byte-for-byte the legacy payloads, for every (chunk, segment) shape.
  const auto syms = geometric_symbols(30000, 21, 512);
  const auto hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  for (const size_t chunk : {256u, 1024u, 4096u, 65536u}) {
    const auto legacy =
        huffman_encode(syms, book, HuffmanEncodeOptions{chunk, 0});
    const HuffmanLayout ll = parse_huffman_layout(legacy);
    for (const size_t seg : {64u, 256u, 1024u, 4096u, 100000u}) {
      const auto gap =
          huffman_encode(syms, book, HuffmanEncodeOptions{chunk, seg});
      const HuffmanLayout gl = parse_huffman_layout(gap);
      ASSERT_EQ(gl.segment_size, seg);
      ASSERT_TRUE(std::equal(ll.payload.begin(), ll.payload.end(),
                             gl.payload.begin(), gl.payload.end()))
          << "chunk=" << chunk << " seg=" << seg;
      EXPECT_EQ(huffman_decode(gap, book), syms)
          << "chunk=" << chunk << " seg=" << seg;
    }
  }
}

TEST(HuffmanGap, LegacyStreamStillDecodes) {
  const auto syms = geometric_symbols(20000, 22, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const auto book = HuffmanCodebook::build(hist);
  const auto legacy =
      huffman_encode(syms, book, HuffmanEncodeOptions{4096, 0});
  const HuffmanLayout lay = parse_huffman_layout(legacy);
  EXPECT_EQ(lay.segment_size, 0u);
  EXPECT_TRUE(lay.gaps.empty());
  EXPECT_EQ(huffman_decode(legacy, book), syms);
}

TEST(HuffmanGap, TableAndBitSerialPathsAgree) {
  const auto syms = geometric_symbols(50000, 23, 1024);
  const auto hist = histogram<u16>(syms, 1024);
  const auto book = HuffmanCodebook::build(hist);
  const auto enc = huffman_encode(syms, book);
  const auto table = huffman_decode(enc, book, {.workers = 1});
  const auto serial =
      huffman_decode(enc, book, {.workers = 1, .table_fast = false});
  EXPECT_EQ(table, syms);
  EXPECT_EQ(serial, syms);
}

TEST(HuffmanGap, EveryWorkerCountYieldsIdenticalOutput) {
  const auto syms = geometric_symbols(40000, 24, 512);
  const auto hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  // Small segments so worker counts actually partition many segments.
  const auto enc = huffman_encode(syms, book, HuffmanEncodeOptions{4096, 128});
  const auto want = huffman_decode(enc, book, {.workers = 1});
  ASSERT_EQ(want, syms);
  for (const size_t w : {2u, 3u, 8u, 0u}) {
    EXPECT_EQ(huffman_decode(enc, book, {.workers = w}), want)
        << "workers=" << w;
  }
}

TEST(HuffmanGap, SingleChunkStreamDecodesSegmentParallel) {
  // The motivating case for the gap array: one huge chunk used to decode
  // on one thread; now it splits into many segments.
  const auto syms = geometric_symbols(60000, 25, 256);
  const auto hist = histogram<u16>(syms, 256);
  const auto book = HuffmanCodebook::build(hist);
  const auto enc =
      huffman_encode(syms, book, HuffmanEncodeOptions{1u << 20, 512});
  const HuffmanLayout lay = parse_huffman_layout(enc);
  ASSERT_EQ(lay.num_chunks, 1u);
  EXPECT_GT(lay.total_segments(), 100u);
  EXPECT_EQ(huffman_decode(enc, book), syms);
}

TEST(HuffmanGap, GapBytesMatchesStreamOverhead) {
  const auto syms = geometric_symbols(30000, 26, 512);
  const auto hist = histogram<u16>(syms, 512);
  const auto book = HuffmanCodebook::build(hist);
  const size_t chunk = 4096, seg = 512;
  const auto legacy = huffman_encode(syms, book, HuffmanEncodeOptions{chunk, 0});
  const auto gap = huffman_encode(syms, book, HuffmanEncodeOptions{chunk, seg});
  EXPECT_EQ(gap.size() - legacy.size(),
            huffman_gap_bytes(syms.size(), chunk, seg));
}

TEST(HuffmanGap, DeepCodebookFallsBackPastTableBudget) {
  // A maximally skewed histogram produces a staircase codebook whose
  // longest codes exceed the two-level table budget handling; whatever path
  // the decoder picks must still round-trip.
  std::vector<u64> hist(40, 0);
  u64 f = 1;
  for (size_t s = 0; s < hist.size(); ++s) {
    hist[s] = f;
    if (f < (u64{1} << 40)) f *= 2;
  }
  const auto book = HuffmanCodebook::build(hist);
  EXPECT_GT(book.max_length(), HuffmanDecodeTables::kMaxPrimaryBits);
  Rng rng(27);
  std::vector<u16> syms(20000);
  for (auto& s : syms)
    s = static_cast<u16>(hist.size() - 1 - std::min<u64>(rng.below(40), 39));
  const auto enc = huffman_encode(syms, book);
  EXPECT_EQ(huffman_decode(enc, book), syms);
  EXPECT_EQ(huffman_decode(enc, book, {.table_fast = false}), syms);
}

TEST(Huffman, RejectsCorruptStream) {
  auto syms = geometric_symbols(1000, 10, 64);
  auto stream = huffman_compress(syms, 64);
  stream.resize(stream.size() / 2);  // truncate payload
  EXPECT_THROW(huffman_decompress(stream), FormatError);
}

TEST(Huffman, CodebookBuildCostGrowsWithBins) {
  EXPECT_GT(codebook_build_serial_ns(1024), codebook_build_serial_ns(256));
  EXPECT_GT(codebook_build_serial_ns(1024), 1e5);  // non-trivial serial phase
}

TEST(Entropy, KnownValues) {
  const std::vector<u64> uniform4{10, 10, 10, 10};
  EXPECT_NEAR(shannon_entropy(uniform4), 2.0, 1e-12);
  const std::vector<u64> one{42};
  EXPECT_NEAR(shannon_entropy(one), 0.0, 1e-12);
}

}  // namespace
}  // namespace fz
