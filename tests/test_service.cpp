// fz::Service and the fzd stack: the try_* status API, the job model, the
// wire protocol, the Unix-socket server/client, and the soak contract the
// service harness promises — every response byte-identical to a direct
// Codec, explicit backpressure, no exception across the boundary, and zero
// steady-state heap allocations once warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

// Program-wide allocation counter (same shape as test_codec.cpp): every
// operator-new variant is replaced so the warm-service-loop assertion sees
// every heap allocation in this binary.
namespace {

std::atomic<size_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t n, std::align_val_t al) {
  ++g_alloc_count;
  const auto a = static_cast<std::size_t>(al);
  const std::size_t padded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, padded != 0 ? padded : a)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* counted_alloc_nothrow(std::size_t n) noexcept {
  ++g_alloc_count;
  return std::malloc(n != 0 ? n : 1);
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, al);
}
// The nothrow forms must be replaced too: std::stable_sort's temporary
// buffer allocates via operator new(n, nothrow) but frees via the sized
// operator delete above — mixing the default nothrow new with our free()
// is an alloc-dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fz {
namespace {

Field noisy_field(Dims dims, u64 seed) {
  Field f;
  f.dataset = "synthetic";
  f.name = "noisy";
  f.dims = dims;
  f.data.resize(dims.count());
  Rng rng(seed);
  for (size_t i = 0; i < f.data.size(); ++i)
    f.data[i] = static_cast<f32>(
        100.0 + 40.0 * std::sin(static_cast<double>(i) * 0.013) +
        rng.uniform(-0.3, 0.3));
  return f;
}

Request compress_request(const Field& f, ErrorBound eb) {
  Request req;
  req.kind = JobKind::Compress;
  req.dims = f.dims;
  req.eb = eb;
  const u8* bytes = reinterpret_cast<const u8*>(f.data.data());
  req.payload.assign(bytes, bytes + f.data.size() * sizeof(f32));
  return req;
}

std::string test_socket_path(const char* tag) {
  return "/tmp/fz-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

// ---- the non-throwing try_* API ---------------------------------------------

TEST(StatusApi, TryCompressMatchesThrowingApiByteForByte) {
  const Field f = noisy_field(Dims{64, 32, 4}, 3);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  Codec codec(params);
  const FzCompressed direct = codec.compress(f.values(), f.dims);

  FzCompressed out;
  ASSERT_TRUE(codec.try_compress(f.values(), f.dims, out).ok());
  EXPECT_EQ(out.bytes, direct.bytes);
  EXPECT_EQ(out.stats.compressed_bytes, direct.stats.compressed_bytes);
  // try_compress skips the stage cost sheets (service hot path).
  EXPECT_TRUE(out.stage_costs.empty());

  FzDecompressed restored;
  ASSERT_TRUE(codec.try_decompress(out.bytes, restored).ok());
  EXPECT_EQ(restored.dims, f.dims);
  EXPECT_TRUE(error_bounded(f.values(), restored.data, out.stats.abs_eb));
}

TEST(StatusApi, TryRoundTripF64) {
  Rng rng(17);
  std::vector<f64> data(4096);
  f64 acc = 1e5;
  for (auto& v : data) {
    acc += rng.normal(0.0, 1e-3);
    v = acc;
  }
  Codec codec;
  codec.params().eb = ErrorBound::absolute(1e-5);
  FzCompressed c;
  ASSERT_TRUE(codec.try_compress(std::span<const f64>(data), Dims{4096}, c)
                  .ok());
  FzDecompressed64 d;
  ASSERT_TRUE(codec.try_decompress(c.bytes, d).ok());
  ASSERT_EQ(d.data.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::fabs(data[i] - d.data[i]), 1e-5 * (1 + 1e-9));
}

TEST(StatusApi, ErrorsMapToStableCodes) {
  Codec codec;
  FzCompressed out;

  // ParamError -> InvalidParams (bad eb via per-call params).
  codec.params().eb = ErrorBound::absolute(-1.0);
  std::vector<f32> data(64, 1.0f);
  Status s = codec.try_compress(FloatSpan(data), Dims{64}, out);
  EXPECT_EQ(s.code(), StatusCode::InvalidParams);
  EXPECT_FALSE(s.message().empty());
  EXPECT_TRUE(out.bytes.empty()) << "failed try_compress must clear out";
  EXPECT_EQ(std::string(status_code_name(s.code())), "invalid-params");
  codec.params().eb = ErrorBound::relative(1e-3);

  // FormatError -> InvalidStream.
  std::vector<u8> garbage(128, 0xcd);
  FzDecompressed d;
  s = codec.try_decompress(garbage, d);
  EXPECT_EQ(s.code(), StatusCode::InvalidStream);
  EXPECT_FALSE(s.message().empty());

  // Dtype mismatch is also a stream-level error, with the stage's wording.
  ASSERT_TRUE(codec.try_compress(FloatSpan(data), Dims{64}, out).ok());
  FzDecompressed64 d64;
  s = codec.try_decompress(out.bytes, d64);
  EXPECT_EQ(s.code(), StatusCode::InvalidStream);

  // try_decompress_into: output span too small.
  std::vector<f32> tiny(8);
  s = codec.try_decompress_into(out.bytes, std::span<f32>(tiny));
  EXPECT_FALSE(s.ok());

  // Ok statuses render as "ok"; failures embed the code name.
  EXPECT_EQ(Status().to_string(), "ok");
  EXPECT_NE(s.to_string().find(status_code_name(s.code())),
            std::string::npos);
}

// ---- in-process service -----------------------------------------------------

TEST(Service, CompressDecompressInspectMatchDirectCodec) {
  const Field f = noisy_field(Dims{48, 24, 6}, 5);
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;  // what the service forces for its workers
  const FzCompressed direct = fz_compress(f.values(), f.dims, params);

  Service::Options opt;
  opt.workers = 2;
  Service service(opt);
  Response resp;

  Request req = compress_request(f, eb);
  ASSERT_TRUE(service.submit(req, resp).ok());
  EXPECT_EQ(resp.payload, direct.bytes);
  EXPECT_EQ(resp.stats.compressed_bytes, direct.stats.compressed_bytes);
  EXPECT_EQ(resp.dims, f.dims);
  const std::vector<u8> stream = resp.payload;

  req.kind = JobKind::Decompress;
  req.payload = stream;
  ASSERT_TRUE(service.submit(req, resp).ok());
  const FzDecompressed restored = fz_decompress(stream);
  ASSERT_EQ(resp.payload.size(), restored.data.size() * sizeof(f32));
  EXPECT_EQ(std::memcmp(resp.payload.data(), restored.data.data(),
                        resp.payload.size()),
            0);
  EXPECT_EQ(resp.dims, f.dims);
  EXPECT_EQ(resp.dtype_bytes, 4u);

  req.kind = JobKind::Inspect;
  ASSERT_TRUE(service.submit(req, resp).ok());
  EXPECT_EQ(resp.info.count, f.count());
  EXPECT_EQ(resp.info.stream_bytes, stream.size());

  req.kind = JobKind::Ping;
  req.payload.clear();
  EXPECT_TRUE(service.submit(req, resp).ok());

  const Service::Counters c = service.counters();
  EXPECT_EQ(c.accepted, 4u);
  EXPECT_EQ(c.completed, 4u);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(c.dropped_exceptions, 0u);
}

TEST(Service, DecompressesChunkedContainers) {
  const Field f = noisy_field(Dims{64, 32, 8}, 21);
  ChunkedParams chunked;
  chunked.base.eb = ErrorBound::relative(1e-3);
  chunked.num_chunks = 4;
  const ChunkedCompressed container =
      fz_compress_chunked(f.values(), f.dims, chunked);

  Service service;
  Request req;
  req.kind = JobKind::Decompress;
  req.payload = container.bytes;
  Response resp;
  ASSERT_TRUE(service.submit(req, resp).ok());
  const FzDecompressed direct = fz_decompress_chunked(container.bytes);
  ASSERT_EQ(resp.payload.size(), direct.data.size() * sizeof(f32));
  EXPECT_EQ(std::memcmp(resp.payload.data(), direct.data.data(),
                        resp.payload.size()),
            0);
  EXPECT_EQ(resp.dims, f.dims);
}

TEST(Service, AdmissionRejectsBeforeQueueing) {
  Service service;
  Response resp;

  // Structural: payload/dims mismatch.
  Request req;
  req.kind = JobKind::Compress;
  req.dims = Dims{100};
  req.eb = ErrorBound::relative(1e-3);
  req.payload.assign(16, 0);  // 4 samples, dims say 100
  EXPECT_EQ(service.submit(req, resp).code(), StatusCode::BadRequest);

  // Parameter nonsense: zero dims.
  req.dims = Dims{0, 0, 0};
  EXPECT_EQ(service.submit(req, resp).code(), StatusCode::InvalidParams);

  // Empty stream payload.
  req.kind = JobKind::Decompress;
  req.payload.clear();
  EXPECT_EQ(service.submit(req, resp).code(), StatusCode::BadRequest);

  const Service::Counters c = service.counters();
  EXPECT_EQ(c.accepted, 0u) << "rejected jobs must not take queue slots";
  EXPECT_EQ(c.rejected_invalid, 3u);
}

TEST(Service, TenantPolicyIsEnforced) {
  const Field f = noisy_field(Dims{32, 16, 2}, 7);
  Service service;
  Response resp;

  TenantPolicy policy;
  policy.min_rel_eb = 1e-4;
  policy.max_payload_bytes = 1 << 20;
  policy.allow_f64 = false;
  service.set_policy(42, policy);

  // Tenant 42: bound tighter than the floor is denied...
  Request req = compress_request(f, ErrorBound::relative(1e-6));
  req.tenant = 42;
  EXPECT_EQ(service.submit(req, resp).code(), StatusCode::PolicyDenied);
  // ...the floor itself is allowed...
  req.eb = ErrorBound::relative(1e-4);
  EXPECT_TRUE(service.submit(req, resp).ok());
  // ...and an unpoliced tenant is unaffected.
  req.tenant = 0;
  req.eb = ErrorBound::relative(1e-6);
  EXPECT_TRUE(service.submit(req, resp).ok());

  // f64 denial.
  req.tenant = 42;
  req.kind = JobKind::CompressF64;
  std::vector<f64> d64(f.data.begin(), f.data.end());
  const u8* bytes = reinterpret_cast<const u8*>(d64.data());
  req.payload.assign(bytes, bytes + d64.size() * sizeof(f64));
  req.eb = ErrorBound::relative(1e-4);
  EXPECT_EQ(service.submit(req, resp).code(), StatusCode::PolicyDenied);

  // Replacing the policy lifts the restriction.
  policy.allow_f64 = true;
  service.set_policy(42, policy);
  EXPECT_TRUE(service.submit(req, resp).ok());

  EXPECT_EQ(service.counters().rejected_policy, 2u);
}

TEST(Service, FullQueueRejectsWithQueueFullStatus) {
  // One worker, one queue slot, no batching: occupy the worker with a big
  // job, fill the only slot with a second, and a third submit must be
  // rejected with QueueFull.  The interleaving is timing-dependent (on a
  // one-core box the big job can finish before the second submitter is
  // even scheduled, and the queue_len==1 window collapses), so every poll
  // has an escape condition and a collapsed attempt is simply retried —
  // never an unbounded spin.
  Service::Options opt;
  opt.workers = 1;
  opt.queue_depth = 1;
  opt.batch_max = 1;
  Service service(opt);

  const Field big = noisy_field(Dims{256, 128, 16}, 9);
  const Field small = noisy_field(Dims{512}, 10);
  const ErrorBound eb = ErrorBound::relative(1e-3);

  ThreadPool submitters(2);
  std::atomic<int> ok_jobs{0};
  u64 done_before = 0;
  bool saw_queue_full = false;
  for (int attempt = 0; attempt < 50 && !saw_queue_full; ++attempt) {
    submitters.submit([&](size_t) {
      Request req = compress_request(big, eb);
      Response resp;
      EXPECT_TRUE(service.submit(req, resp).ok());
      ok_jobs.fetch_add(1);
    });
    // Wait until the worker holds the big job (accepted, queue drained,
    // not yet completed); bail out if it already finished.
    for (;;) {
      const Service::Counters c = service.counters();
      if (c.completed > done_before) break;  // missed it — retry
      if (c.accepted > done_before && c.queue_len == 0) break;
      std::this_thread::yield();
    }
    submitters.submit([&](size_t) {
      Request req = compress_request(small, eb);
      Response resp;
      EXPECT_TRUE(service.submit(req, resp).ok());
      ok_jobs.fetch_add(1);
    });
    // Wait for the slot to fill; bail out once both jobs drained without
    // us ever observing it.
    for (;;) {
      const Service::Counters c = service.counters();
      if (c.queue_len == 1) break;
      if (c.completed >= done_before + 2) break;  // window collapsed
      std::this_thread::yield();
    }

    Request req = compress_request(small, eb);
    Response resp;
    const Status s = service.submit(req, resp);
    if (s.code() == StatusCode::QueueFull) {
      saw_queue_full = true;
      EXPECT_TRUE(s.message().size() > 0);
    } else {
      // The worker freed up before our probe: the submit legitimately
      // succeeded.  Drain and try again.
      EXPECT_TRUE(s.ok()) << s.to_string();
    }
    submitters.wait_idle();
    done_before = service.counters().completed;
  }

  EXPECT_TRUE(saw_queue_full);
  const Service::Counters c = service.counters();
  EXPECT_GE(c.rejected_queue_full, 1u);
  // Every accepted job completed (the successful probes add to completed
  // but not to ok_jobs, hence >=).
  EXPECT_GE(c.completed, static_cast<u64>(ok_jobs.load()));
  EXPECT_GE(c.peak_queue_depth, 1u);
  EXPECT_EQ(c.dropped_exceptions, 0u);
}

TEST(Service, StatsTextCarriesServiceAndTelemetryCounters) {
  telemetry::Sink sink;
  Service::Options opt;
  opt.workers = 1;
  opt.telemetry = &sink;
  Service service(opt);

  const Field f = noisy_field(Dims{32, 32, 2}, 11);
  Request req = compress_request(f, ErrorBound::relative(1e-3));
  Response resp;
  ASSERT_TRUE(service.submit(req, resp).ok());

  std::ostringstream os;
  service.write_stats_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("fz_service_up 1"), std::string::npos);
  EXPECT_NE(text.find("fz_service_jobs_accepted 1"), std::string::npos);
  EXPECT_NE(text.find("fz_service_jobs_completed 1"), std::string::npos);
  EXPECT_NE(text.find("fz_service_worker_dropped_exceptions 0"),
            std::string::npos);
  EXPECT_NE(text.find("fz_service_job_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  // The sink's spans/counters render on the same endpoint: the per-job span
  // and the pool counters recorded by the worker codec.
  EXPECT_NE(text.find("fz_stage_gbps{stage=\"service-job\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fz_counter{name=\"pool_hits\"}"), std::string::npos);

  // The Stats job kind returns the same text as a response payload.
  req.kind = JobKind::Stats;
  req.payload.clear();
  ASSERT_TRUE(service.submit(req, resp).ok());
  const std::string via_job(resp.payload.begin(), resp.payload.end());
  EXPECT_NE(via_job.find("fz_service_up 1"), std::string::npos);
}

TEST(Service, SubmitIsUsableFromManyThreadsAtOnce) {
  const Field f = noisy_field(Dims{24, 24, 2}, 13);
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;
  const std::vector<u8> expected = fz_compress(f.values(), f.dims, params).bytes;

  Service::Options opt;
  opt.workers = 3;
  opt.queue_depth = 8;
  Service service(opt);

  std::atomic<size_t> mismatches{0};
  run_task_crew(8, 8, [&](size_t, size_t) {
    Request req = compress_request(f, eb);
    Response resp;
    for (int i = 0; i < 25; ++i) {
      for (;;) {
        const Status s = service.submit(req, resp);
        if (s.code() == StatusCode::QueueFull) {  // backpressure: retry
          std::this_thread::yield();
          continue;
        }
        if (!s.ok() || resp.payload != expected)
          mismatches.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  const Service::Counters c = service.counters();
  EXPECT_EQ(c.completed, 200u);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(c.dropped_exceptions, 0u);
}

// ---- the soak contract ------------------------------------------------------

// >= 5000 mixed-size requests from >= 8 client threads against one warm
// Service: every response byte-identical to a direct Codec, backpressure
// surfaces as QueueFull (never a block or a drop), no exception crosses the
// boundary, and — once warm — the steady single-shape loop performs zero
// heap allocations end to end (global operator-new counter).
TEST(ServiceSoak, MixedTrafficIsByteIdenticalAndSteadyStateIsAllocFree) {
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;

  std::vector<Field> fields;
  fields.push_back(noisy_field(Dims{512}, 101));          // tiny (batched)
  fields.push_back(noisy_field(Dims{32, 16, 4}, 102));    // small (batched)
  fields.push_back(noisy_field(Dims{64, 48, 5}, 103));    // medium
  fields.push_back(noisy_field(Dims{96, 64, 8}, 104));    // large (singleton)
  std::vector<std::vector<u8>> expected;
  for (const Field& f : fields)
    expected.push_back(fz_compress(f.values(), f.dims, params).bytes);

  Service::Options opt;
  opt.workers = 4;
  opt.queue_depth = 32;
  Service service(opt);

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 640;  // 5120 requests total
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> completed{0};

  run_task_crew(kClients, kClients, [&](size_t task, size_t) {
    Request req;
    Response resp;
    req.kind = JobKind::Compress;
    req.eb = eb;
    for (size_t i = 0; i < kPerClient; ++i) {
      const size_t which = (task * 9973 + i * 31) % fields.size();
      const Field& f = fields[which];
      req.dims = f.dims;
      const u8* bytes = reinterpret_cast<const u8*>(f.data.data());
      req.payload.assign(bytes, bytes + f.data.size() * sizeof(f32));
      for (;;) {
        const Status s = service.submit(req, resp);
        if (s.code() == StatusCode::QueueFull) {
          std::this_thread::yield();
          continue;
        }
        if (!s.ok())
          failures.fetch_add(1, std::memory_order_relaxed);
        else if (resp.payload != expected[which])
          mismatches.fetch_add(1, std::memory_order_relaxed);
        else
          completed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  Service::Counters c = service.counters();
  EXPECT_EQ(c.dropped_exceptions, 0u) << "an exception escaped a worker";
  EXPECT_EQ(c.failed, 0u);

  // Steady state: one client, one shape, warm buffers everywhere.  The
  // submit path (admission, queue slot, wakeup, try_compress into the
  // worker's scratch, payload assign into warm capacity, latency ring)
  // must not touch the heap at all.
  Request req = compress_request(fields[2], eb);
  Response resp;
  for (int warm = 0; warm < 4; ++warm)
    ASSERT_TRUE(service.submit(req, resp).ok());

  EXPECT_GT(g_alloc_count.load(), 0u);  // the counter is actually wired in
  const size_t before = g_alloc_count.load();
  for (int round = 0; round < 16; ++round) {
    const Status s = service.submit(req, resp);
    ASSERT_TRUE(s.ok());
  }
#if defined(FZ_HAVE_OPENMP)
  EXPECT_EQ(g_alloc_count.load(), before)
      << "warm service loop hit the heap";
#else
  // Without OpenMP the comparison stays informative but non-fatal: the
  // fused pass runs with fused_workers=1 (inline, no thread spawn), so
  // this still holds in practice.
  EXPECT_GE(g_alloc_count.load(), before);
#endif
  EXPECT_EQ(resp.payload, expected[2]);
}

// ---- wire protocol ----------------------------------------------------------

TEST(Wire, RequestRoundTripsThroughFrames) {
  Request req;
  req.kind = JobKind::CompressF64;
  req.tenant = 99;
  req.dims = Dims{10, 20, 30};
  req.eb = ErrorBound::absolute(0.125);
  req.payload = {1, 2, 3, 4, 5};

  std::vector<u8> frame;
  wire::encode_request(req, frame);
  ASSERT_GE(frame.size(), sizeof(u32) + sizeof(wire::RequestHeader));
  u32 frame_bytes = 0;
  std::memcpy(&frame_bytes, frame.data(), sizeof(frame_bytes));
  ASSERT_EQ(frame_bytes, frame.size() - sizeof(u32));

  Request out;
  const ByteSpan body(frame.data() + sizeof(u32), frame_bytes);
  ASSERT_TRUE(wire::decode_request(body, out).ok());
  EXPECT_EQ(out.kind, JobKind::CompressF64);
  EXPECT_EQ(out.tenant, 99u);
  EXPECT_EQ(out.dims, req.dims);
  EXPECT_EQ(out.eb.mode, ErrorBoundMode::Absolute);
  EXPECT_EQ(out.eb.value, 0.125);
  EXPECT_EQ(out.payload, req.payload);
}

TEST(Wire, ResponseRoundTripsAllSections) {
  Response resp;
  resp.status = Status(StatusCode::PolicyDenied, "nope");
  resp.payload = {9, 8, 7};
  resp.dims = Dims{4, 5, 6};
  resp.dtype_bytes = 8;
  resp.stats.count = 120;
  resp.stats.compressed_bytes = 64;
  resp.stats.abs_eb = 0.5;
  resp.info.count = 120;
  resp.info.dims = Dims{4, 5, 6};
  resp.info.stream_bytes = 64;
  resp.info.quant = QuantVersion::V1Original;
  resp.info.chunks.resize(3);

  std::vector<u8> frame;
  wire::encode_response(resp, frame);
  u32 frame_bytes = 0;
  std::memcpy(&frame_bytes, frame.data(), sizeof(frame_bytes));
  Response out;
  const ByteSpan body(frame.data() + sizeof(u32), frame_bytes);
  ASSERT_TRUE(wire::decode_response(body, out).ok());
  EXPECT_EQ(out.status.code(), StatusCode::PolicyDenied);
  EXPECT_EQ(out.status.message(), "nope");
  EXPECT_EQ(out.payload, resp.payload);
  EXPECT_EQ(out.dims, resp.dims);
  EXPECT_EQ(out.dtype_bytes, 8u);
  EXPECT_EQ(out.stats.count, 120u);
  EXPECT_EQ(out.stats.compressed_bytes, 64u);
  EXPECT_EQ(out.info.count, 120u);
  EXPECT_EQ(out.info.quant, QuantVersion::V1Original);
}

TEST(Wire, MalformedFramesAreStatusesNotCrashes) {
  Request req;
  std::vector<u8> frame;
  wire::encode_request(req, frame);
  ByteSpan body(frame.data() + sizeof(u32), frame.size() - sizeof(u32));

  Request out;
  // Truncated header.
  EXPECT_EQ(wire::decode_request(body.subspan(0, 10), out).code(),
            StatusCode::BadRequest);
  // Bad magic.
  std::vector<u8> bad(body.begin(), body.end());
  bad[0] ^= 0xff;
  EXPECT_EQ(wire::decode_request(bad, out).code(), StatusCode::BadRequest);
  // Future version.
  bad = std::vector<u8>(body.begin(), body.end());
  bad[4] = 0x7f;
  EXPECT_EQ(wire::decode_request(bad, out).code(), StatusCode::Unsupported);
  // Payload length that disagrees with the frame.
  bad = std::vector<u8>(body.begin(), body.end());
  bad[offsetof(wire::RequestHeader, payload_bytes)] = 0x10;
  EXPECT_EQ(wire::decode_request(bad, out).code(), StatusCode::BadRequest);
}

// ---- socket end to end ------------------------------------------------------

TEST(ServerSocket, EndToEndRoundTripAndStats) {
  const std::string path = test_socket_path("e2e");
  Server::Options opt;
  opt.socket_path = path;
  opt.service.workers = 2;
  Server server(opt);

  const Field f = noisy_field(Dims{40, 20, 4}, 19);
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;
  const FzCompressed direct = fz_compress(f.values(), f.dims, params);

  Client client(path);
  EXPECT_TRUE(client.ping().ok());
  Response resp;
  ASSERT_TRUE(client.compress(f.values(), f.dims, eb, resp).ok());
  EXPECT_EQ(resp.payload, direct.bytes);

  ASSERT_TRUE(client.inspect(direct.bytes, resp).ok());
  EXPECT_EQ(resp.info.count, f.count());

  std::vector<u8> garbage(32, 0x5a);
  EXPECT_EQ(client.decompress(garbage, resp).code(),
            StatusCode::InvalidStream);

  std::string stats;
  ASSERT_TRUE(client.stats_text(stats).ok());
  EXPECT_NE(stats.find("fz_service_up 1"), std::string::npos);

  EXPECT_GE(server.connections_accepted(), 1u);
  server.stop();  // idempotent with the destructor's stop
}

TEST(ServerSocket, ManyClientsOverTheWire) {
  const std::string path = test_socket_path("many");
  Server::Options opt;
  opt.socket_path = path;
  opt.service.workers = 2;
  opt.io_workers = 4;
  Server server(opt);

  const Field f = noisy_field(Dims{24, 12, 2}, 23);
  const ErrorBound eb = ErrorBound::relative(1e-3);
  FzParams params;
  params.eb = eb;
  params.fused_workers = 1;
  const std::vector<u8> expected = fz_compress(f.values(), f.dims, params).bytes;

  std::atomic<size_t> mismatches{0};
  run_task_crew(6, 6, [&](size_t, size_t) {
    Client client(path);
    Response resp;
    for (int i = 0; i < 20; ++i) {
      const Status s = client.compress(f.values(), f.dims, eb, resp);
      if (!s.ok() || resp.payload != expected)
        mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.service().counters().completed, 120u);
}

}  // namespace
}  // namespace fz
