// fzcheck negative-path suite: every hazard class detected in a minimal
// broken kernel, every shipping kernel hazard-free under analysis, and the
// disabled mode bit-identical in cost.  See docs/SANITIZER.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/bitshuffle.hpp"
#include "core/format.hpp"
#include "core/kernels_sim.hpp"
#include "cudasim/launch.hpp"
#include "substrate/huffman.hpp"

namespace fz {
namespace {

using cudasim::Dim3;
using cudasim::Hazard;
using cudasim::LaunchConfig;
using cudasim::SanitizerReport;
using cudasim::ScopedSanitizer;
using cudasim::ThreadCtx;

LaunchConfig one_warp(SanitizerReport* report) {
  LaunchConfig cfg;
  cfg.name = "toy";
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  cfg.report = report;
  return cfg;
}

std::vector<u32> random_words(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

// ---- Hazard class 1: shared-memory races ----------------------------------

TEST(Fzcheck, WriteWriteRaceSameWord) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 8);
    s.st(0, t.lane());  // every lane writes word 0, no ordering
  });
  EXPECT_GT(report.count(Hazard::SharedRace), 0u);
  const auto& f = report.findings().front();
  EXPECT_EQ(f.kind, Hazard::SharedRace);
  EXPECT_EQ(f.kernel, "toy");
  EXPECT_TRUE(f.first.write);
  EXPECT_NE(f.first.tid, f.second.tid);
  EXPECT_NE(f.detail.find("races with"), std::string::npos);
}

TEST(Fzcheck, ReadWriteRaceWithoutBarrier) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 32);
    s.st(t.lane(), t.lane());
    // Missing __syncthreads: lane L reads its neighbour's slot while that
    // neighbour's write is unordered relative to this read.
    (void)s.ld((t.lane() + 1) % 32);
  });
  EXPECT_GT(report.count(Hazard::SharedRace), 0u);
}

TEST(Fzcheck, BarrierOrdersCrossThreadSharing) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 32);
    s.st(t.lane(), t.lane());
    t.sync_threads();
    (void)s.ld((t.lane() + 1) % 32);
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Fzcheck, WarpCollectiveOrdersSameWarpSharing) {
  // ballot/any/shfl synchronize the warp like __syncwarp: a cross-lane
  // read AFTER a completed collective is ordered, with no __syncthreads.
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 32);
    s.st(t.lane(), t.lane() * 3);
    (void)t.ballot(true);
    (void)s.ld((t.lane() + 1) % 32);
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Fzcheck, ByteGranularity_AdjacentByteFlagsDoNotRace) {
  // Four u8 flags share one 32-bit word; distinct-byte writers are not a
  // race (the fused kernel's ByteFlagArr depends on this).
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto flags = t.shared_mem<u8>("flags", 32);
    flags.st(t.lane(), 1);
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// ---- Hazard class 2: out-of-bounds ----------------------------------------

TEST(Fzcheck, SharedOutOfBoundsIsReportedAndSkipped) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 4);
    if (t.lane() == 0) s.st(4, 7);  // one past the end
    if (t.lane() == 1) (void)s.ld(100);
  });
  EXPECT_EQ(report.count(Hazard::SharedOutOfBounds), 2u);
  EXPECT_NE(report.to_string().find("out of bounds"), std::string::npos);
}

TEST(Fzcheck, GlobalOutOfBoundsThroughCheckedAccessors) {
  std::vector<u32> data(16, 1);
  std::vector<u32> out(16, 0);
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [&](ThreadCtx& t) {
    if (t.lane() == 0) (void)t.gload(data, data.size());  // one past the end
    if (t.lane() == 1) t.gstore(out, 999, 5u);
  });
  EXPECT_EQ(report.count(Hazard::GlobalOutOfBounds), 2u);
  EXPECT_EQ(std::count(out.begin(), out.end(), 0u), 16);  // store skipped
}

// ---- Hazard class 3: uninitialized shared reads ---------------------------

TEST(Fzcheck, UninitializedSharedReadIsReported) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 8);
    if (t.lane() == 0) (void)s.ld(3);  // nobody ever wrote s[3]
  });
  EXPECT_EQ(report.count(Hazard::UninitRead), 1u);
  EXPECT_EQ(report.count(Hazard::SharedRace), 0u);
}

TEST(Fzcheck, WrittenThenReadIsNotUninitialized) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 8);
    if (t.lane() == 0) s.st(3, 1);
    t.sync_threads();
    (void)s.ld(3);
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// ---- Hazard class 4: divergent barriers / collectives ---------------------

TEST(Fzcheck, DivergentBarrierCallSitesAreReported) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    if (t.lane() < 16) t.sync_threads();  // half the block at one site...
    t.sync_threads();                     // ...pairs with the other half here
  });
  EXPECT_EQ(report.count(Hazard::DivergentBarrier), 1u);
  EXPECT_NE(report.to_string().find("divergent control flow"),
            std::string::npos);
}

TEST(Fzcheck, UniformBarriersAreClean) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    t.sync_threads();
    t.sync_threads();
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Fzcheck, PartialMaskCollectiveIsReported) {
  SanitizerReport report;
  u32 mask = 0;
  cudasim::launch(one_warp(&report), [&](ThreadCtx& t) {
    if (t.lane() >= 16) return;  // half the warp exits before the ballot
    const u32 b = t.ballot(true);
    if (t.lane() == 0) mask = b;
  });
  EXPECT_EQ(mask, 0x0000ffffu);  // live-lane semantics still complete it
  EXPECT_GE(report.count(Hazard::DivergentCollective), 1u);
  EXPECT_NE(report.to_string().find("0x0000ffff"), std::string::npos);
}

TEST(Fzcheck, CollectiveCallSiteMismatchIsReported) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    u32 b = 0;
    if (t.lane() < 16) {
      b = t.ballot(true);
    } else {
      b = t.ballot(true);  // same kind, different call site
    }
    (void)b;
  });
  EXPECT_GE(report.count(Hazard::DivergentCollective), 1u);
  EXPECT_NE(report.to_string().find("divergent lanes"), std::string::npos);
}

TEST(Fzcheck, CollectiveKindMismatchThrowsAndReports) {
  SanitizerReport report;
  EXPECT_THROW(cudasim::launch(one_warp(&report),
                               [](ThreadCtx& t) {
                                 if (t.lane() == 0) {
                                   (void)t.ballot(true);
                                 } else {
                                   (void)t.any(true);
                                 }
                               }),
               Error);
  EXPECT_GE(report.count(Hazard::DivergentCollective), 1u);
}

// ---- Hazard class 5: bank-conflict lint -----------------------------------

TEST(Fzcheck, ColumnStrideTriggersBankConflictLint) {
  SanitizerReport report;
  LaunchConfig cfg = one_warp(&report);
  cudasim::launch(cfg, [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("tile", 32 * 32);
    s.st(t.lane() * 32, t.lane());  // whole warp in bank 0: degree 32
  });
  EXPECT_EQ(report.count(Hazard::BankConflict), 1u);
  EXPECT_NE(report.to_string().find("conflict degree 32"), std::string::npos);
}

TEST(Fzcheck, PaddedStridePassesBankConflictLint) {
  SanitizerReport report;
  cudasim::launch(one_warp(&report), [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("tile", 32 * 33);
    s.st(t.lane() * 33, t.lane());  // staggered across all 32 banks
  });
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Fzcheck, BankConflictLimitIsConfigurable) {
  SanitizerReport report;
  LaunchConfig cfg = one_warp(&report);
  cfg.bank_conflict_limit = 2;
  cudasim::launch(cfg, [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 64);
    s.st((t.lane() % 2) * 32 + t.lane() / 2, 0);  // degree exactly 2
  });
  EXPECT_EQ(report.count(Hazard::BankConflict), 1u);
}

// ---- Reporting / modes ----------------------------------------------------

TEST(Fzcheck, ThrowsWhenNoReportSinkIsGiven) {
  LaunchConfig cfg;
  cfg.name = "racy";
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  cfg.sanitize = true;  // no report, no ScopedSanitizer: hazards throw
  try {
    cudasim::launch(cfg, [](ThreadCtx& t) {
      auto s = t.shared_mem<u32>("s", 8);
      s.st(0, t.lane());
    });
    FAIL() << "expected fzcheck to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fzcheck[racy]"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("shared-race"), std::string::npos);
  }
}

TEST(Fzcheck, ScopedSanitizerCollectsAcrossLaunches) {
  ScopedSanitizer fzcheck;
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  for (int rep = 0; rep < 2; ++rep) {
    cudasim::launch(cfg, [](ThreadCtx& t) {
      auto s = t.shared_mem<u32>("s", 8);
      if (t.lane() == 0) (void)s.ld(0);  // one uninit read per launch
    });
  }
  EXPECT_EQ(fzcheck.report().count(Hazard::UninitRead), 2u);
}

TEST(Fzcheck, ReportCapsStoredFindingsButCountsAll) {
  SanitizerReport report;
  LaunchConfig cfg = one_warp(&report);
  cfg.block = Dim3{256};
  cudasim::launch(cfg, [](ThreadCtx& t) {
    auto s = t.shared_mem<u32>("s", 8);
    s.st(0, t.linear_tid());
  });
  EXPECT_GT(report.count(Hazard::SharedRace),
            SanitizerReport::kMaxStoredPerKind);
  EXPECT_LE(report.findings().size(), SanitizerReport::kMaxStoredPerKind);
  EXPECT_NE(report.to_string().find("more suppressed"), std::string::npos);
}

TEST(Fzcheck, DisabledModeCostsAreBitIdentical) {
  const auto in = random_words(kTileWords, 7);
  std::vector<u32> out(in.size());
  std::vector<u8> bf, ff;
  const auto plain = sim_bitshuffle_mark_fused(in, out, bf, ff);
  cudasim::CostSheet checked;
  {
    ScopedSanitizer fzcheck;
    checked = sim_bitshuffle_mark_fused(in, out, bf, ff);
    EXPECT_TRUE(fzcheck.report().clean()) << fzcheck.report().to_string();
  }
  EXPECT_EQ(plain.global_bytes_read, checked.global_bytes_read);
  EXPECT_EQ(plain.global_bytes_written, checked.global_bytes_written);
  EXPECT_EQ(plain.shared_accesses, checked.shared_accesses);
  EXPECT_EQ(plain.shared_transactions, checked.shared_transactions);
  EXPECT_EQ(plain.thread_ops, checked.thread_ops);
}

// ---- The paper kernels under fzcheck --------------------------------------

TEST(Fzcheck, AllShippingKernelsAreHazardFree) {
  ScopedSanitizer fzcheck;

  // pred-quant
  Rng rng(11);
  const Dims dims{32, 16, 4};
  std::vector<f32> field(dims.count());
  for (size_t i = 0; i < field.size(); ++i)
    field[i] = std::sin(0.05f * static_cast<f32>(i)) +
               0.01f * static_cast<f32>(rng.normal(0.0, 1.0));
  std::vector<u16> codes(field.size());
  sim_pred_quant_v2(field, dims, 1e-3, codes);

  // single-launch fused quant + shuffle + mark (the PR3 tile pipeline)
  {
    const size_t words = round_up(field.size(), kCodesPerTile) / 2;
    std::vector<u32> fused_out(words);
    std::vector<u8> fused_byte, fused_bit;
    std::vector<i64> anchor(1);
    sim_fused_quant_shuffle_mark(field, dims, 1e-3, fused_out, fused_byte,
                                 fused_bit, anchor);
  }

  // strip variant with the cooperative shared halo (the PR5 scheme)
  {
    const size_t words = round_up(field.size(), kCodesPerTile) / 2;
    std::vector<u32> fused_out(words);
    std::vector<u8> fused_byte, fused_bit;
    std::vector<i64> anchor(1);
    sim_fused_quant_shuffle_mark_strips(field, dims, 1e-3, fused_out,
                                        fused_byte, fused_bit, anchor);
  }

  // fused bitshuffle + mark, compaction, scatter, inverse shuffle
  const auto in = random_words(2 * kTileWords, 12);
  std::vector<u32> shuffled(in.size()), back(in.size());
  std::vector<u8> byte_flags, bit_flags;
  sim_bitshuffle_mark_fused(in, shuffled, byte_flags, bit_flags);
  std::vector<u32> blocks;
  sim_compact_blocks(shuffled, byte_flags, blocks);
  std::vector<u32> scattered(in.size());
  sim_scatter_blocks(bit_flags, blocks, scattered);
  sim_bitunshuffle(scattered, back);
  EXPECT_EQ(back, in);

  // coarse-grained Huffman encode + chunk-parallel decode
  std::vector<u16> syms(6000);
  for (auto& v : syms) v = static_cast<u16>(rng.below(200));
  std::vector<u64> hist(1024, 0);
  for (const u16 v : syms) ++hist[v];
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  std::vector<u8> stream;
  sim_huffman_encode(syms, book, 1000, stream);
  std::vector<u16> decoded;
  sim_huffman_decode(stream, book, decoded);
  EXPECT_EQ(decoded, syms);

  // segment-parallel gap-array decode (the PR8 scheme): the cooperative
  // shared staging of the K-bit table must be race- and uninit-free
  std::vector<u8> gap_stream;
  sim_huffman_encode(syms, book, 1000, gap_stream, 250);
  std::vector<u16> gap_decoded;
  sim_huffman_decode_gap(gap_stream, book, gap_decoded);
  EXPECT_EQ(gap_decoded, syms);

  // cuSZx block stats
  std::vector<f32> mins(div_ceil(field.size(), size_t{128}));
  std::vector<f32> maxs(mins.size());
  sim_szx_block_stats(field, mins, maxs);

  EXPECT_TRUE(fzcheck.report().clean()) << fzcheck.report().to_string();
}

TEST(Fzcheck, StripsHaloKernelIsHazardFreeAcrossBlocks) {
  // The strips kernel's shared halo is filled cooperatively (strided over
  // all 1024 threads) and consumed by stencils after one barrier.  On a
  // multi-tile 3-D field — where every later block reads a full
  // re-prequantized plane plus partial rows — fzcheck must see no
  // uninitialized shared reads, no races, and no barrier divergence.
  ScopedSanitizer fzcheck;
  Rng rng(17);
  const Dims dims{40, 24, 8};  // 7680 elements, 4 blocks, 1001-element halo
  std::vector<f32> field(dims.count());
  for (auto& v : field) v = static_cast<f32>(rng.uniform(-40.0, 40.0));

  const size_t words = round_up(field.size(), kCodesPerTile) / 2;
  std::vector<u32> out(words);
  std::vector<u8> byte_flags, bit_flags;
  std::vector<i64> anchor(1);
  sim_fused_quant_shuffle_mark_strips(field, dims, 1e-3, out, byte_flags,
                                      bit_flags, anchor);
  EXPECT_TRUE(fzcheck.report().clean()) << fzcheck.report().to_string();

  // The unpadded ablation keeps the halo logic intact: still race- and
  // uninit-free, only the transpose's bank conflicts appear.
  sim_fused_quant_shuffle_mark_strips(field, dims, 1e-3, out, byte_flags,
                                      bit_flags, anchor,
                                      /*padded_shared=*/false);
  EXPECT_EQ(fzcheck.report().count(Hazard::SharedRace), 0u);
  EXPECT_EQ(fzcheck.report().count(Hazard::UninitRead), 0u);
  EXPECT_GT(fzcheck.report().count(Hazard::BankConflict), 0u);
}

TEST(Fzcheck, UnpaddedTileVariantFailsBankConflictLint) {
  ScopedSanitizer fzcheck;
  const auto in = random_words(kTileWords, 13);
  std::vector<u32> out(in.size());
  std::vector<u8> bf, ff;
  sim_bitshuffle_mark_fused(in, out, bf, ff, /*padded_shared=*/false);
  EXPECT_GT(fzcheck.report().count(Hazard::BankConflict), 0u);
  EXPECT_EQ(fzcheck.report().count(Hazard::SharedRace), 0u);
}

TEST(Fzcheck, MissingBarrierVariantRaces) {
  ScopedSanitizer fzcheck;
  const auto in = random_words(kTileWords, 14);
  std::vector<u32> out(in.size());
  std::vector<u8> bf, ff;
  sim_bitshuffle_mark_fused(in, out, bf, ff, /*padded_shared=*/true,
                            BitshuffleFault::MissingBarrier);
  EXPECT_GT(fzcheck.report().count(Hazard::SharedRace), 0u);
  EXPECT_EQ(fzcheck.report().count(Hazard::BankConflict), 0u);
}

TEST(Fzcheck, FusedQuantKernelInheritsTheFaultKnobs) {
  // The fused quant kernel shares the transpose/mark tail, so the same
  // injected defects must produce the same diagnostics.
  std::vector<f32> field(kCodesPerTile);
  Rng rng(21);
  for (auto& v : field) v = static_cast<f32>(rng.uniform(-5.0, 5.0));
  const Dims dims{field.size()};
  std::vector<u32> out(kTileWords);
  std::vector<u8> bf, ff;
  std::vector<i64> anchor(1);
  {
    ScopedSanitizer fzcheck;
    sim_fused_quant_shuffle_mark(field, dims, 1e-3, out, bf, ff, anchor,
                                 /*padded_shared=*/true,
                                 BitshuffleFault::MissingBarrier);
    EXPECT_GT(fzcheck.report().count(Hazard::SharedRace), 0u);
  }
  {
    ScopedSanitizer fzcheck;
    sim_fused_quant_shuffle_mark(field, dims, 1e-3, out, bf, ff, anchor,
                                 /*padded_shared=*/false);
    EXPECT_GT(fzcheck.report().count(Hazard::BankConflict), 0u);
    EXPECT_EQ(fzcheck.report().count(Hazard::SharedRace), 0u);
  }
}

TEST(Fzcheck, DivergentBallotVariantDeadlocksWithDiagnostic) {
  ScopedSanitizer fzcheck;
  const auto in = random_words(kTileWords, 15);
  std::vector<u32> out(in.size());
  std::vector<u8> bf, ff;
  EXPECT_THROW(
      sim_bitshuffle_mark_fused(in, out, bf, ff, /*padded_shared=*/true,
                                BitshuffleFault::DivergentBallot),
      Error);
  EXPECT_GE(fzcheck.report().count(Hazard::DivergentCollective), 1u);
  EXPECT_NE(fzcheck.report().to_string().find("deadlocked"),
            std::string::npos);
}

// ---- Simulator regression uncovered by fzcheck ----------------------------

TEST(Fzcheck, BallotCompletesWhenSiblingsExitAfterArrival) {
  // Lanes 0-15 arrive at the ballot FIRST (round-robin order), lanes 16-31
  // exit afterwards.  Completion must be re-checked when a lane dies, or
  // the op waits forever on lanes that will never come — a scheduling-
  // order-dependent spurious deadlock the sanitizer work uncovered.
  LaunchConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  u32 bal = 0xdeadbeef;
  cudasim::launch(cfg, [&](ThreadCtx& t) {
    if (t.lane() >= 16) return;
    const u32 b = t.ballot(true);
    if (t.lane() == 0) bal = b;
  });
  EXPECT_EQ(bal, 0x0000ffffu);
}

}  // namespace
}  // namespace fz
