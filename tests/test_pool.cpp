#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/pool.hpp"

namespace fz {
namespace {

TEST(BufferPool, FirstAcquireIsAMiss) {
  BufferPool pool;
  PooledBuffer b = pool.acquire(1024);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_GE(b.capacity(), 1024u);
  const auto st = pool.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.leased_buffers, 1u);
  EXPECT_EQ(st.cached_buffers, 0u);
}

TEST(BufferPool, ReleaseThenAcquireIsAHit) {
  BufferPool pool;
  pool.acquire(1024);  // temporary: released immediately
  auto st = pool.stats();
  EXPECT_EQ(st.cached_buffers, 1u);
  EXPECT_EQ(st.leased_buffers, 0u);

  PooledBuffer b = pool.acquire(1024);
  st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.cached_buffers, 0u);
  EXPECT_EQ(st.leased_buffers, 1u);
}

TEST(BufferPool, SmallerRequestReusesLargerBuffer) {
  BufferPool pool;
  pool.acquire(4096);
  PooledBuffer b = pool.acquire(100);
  EXPECT_EQ(b.size(), 100u);        // logical size is what was asked for
  EXPECT_EQ(b.capacity(), 4096u);   // backed by the cached larger buffer
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(b.as<u32>().size(), 25u);
}

TEST(BufferPool, LargerRequestAllocatesFresh) {
  BufferPool pool;
  pool.acquire(100);
  PooledBuffer b = pool.acquire(4096);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(b.capacity(), 4096u);
}

TEST(BufferPool, RecycledBuffersAreZeroedOnRequest) {
  BufferPool pool;
  {
    PooledBuffer b = pool.acquire(256, false);
    for (u8& v : b.bytes()) v = 0xab;
  }
  {
    PooledBuffer dirty = pool.acquire(256, false);
    EXPECT_EQ(dirty.data()[0], 0xab);  // stale contents are the caller's deal
  }
  PooledBuffer clean = pool.acquire(256, true);
  for (const u8 v : clean.bytes()) ASSERT_EQ(v, 0);
}

TEST(BufferPool, TrimFreesIdleButNotLeased) {
  BufferPool pool;
  PooledBuffer held = pool.acquire(512);
  pool.acquire(1024);  // released -> cached
  auto st = pool.stats();
  EXPECT_EQ(st.cached_buffers, 1u);
  EXPECT_EQ(st.allocated_bytes, 512u + 1024u);

  pool.trim();
  st = pool.stats();
  EXPECT_EQ(st.cached_buffers, 0u);
  EXPECT_EQ(st.cached_bytes, 0u);
  EXPECT_EQ(st.allocated_bytes, 512u);  // the lease survives
  EXPECT_EQ(st.leased_buffers, 1u);
  EXPECT_EQ(held.size(), 512u);
}

TEST(BufferPool, PeakTracksHighWaterMark) {
  BufferPool pool;
  { PooledBuffer a = pool.acquire(1000); }
  { PooledBuffer b = pool.acquire(3000); }  // 1000 cached + 3000 = 4000 peak
  EXPECT_EQ(pool.stats().peak_allocated_bytes, 4000u);
}

TEST(BufferPool, ZeroByteAcquireIsEmptyAndFree) {
  BufferPool pool;
  PooledBuffer b = pool.acquire(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.stats().misses, 0u);
  EXPECT_EQ(pool.stats().leased_buffers, 0u);
  b.release();  // no-op
}

TEST(PooledBuffer, MoveTransfersTheLease) {
  BufferPool pool;
  PooledBuffer a = pool.acquire(64);
  PooledBuffer b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): post-move probe
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(pool.stats().leased_buffers, 1u);
  b.release();
  EXPECT_EQ(pool.stats().cached_buffers, 1u);
}

TEST(PooledBuffer, MoveAssignReleasesTheOldLease) {
  BufferPool pool;
  PooledBuffer a = pool.acquire(64);
  PooledBuffer b = pool.acquire(128);
  b = std::move(a);  // the 128-byte lease goes back to the pool
  EXPECT_EQ(b.size(), 64u);
  const auto st = pool.stats();
  EXPECT_EQ(st.leased_buffers, 1u);
  EXPECT_EQ(st.cached_buffers, 1u);
}

TEST(BufferPool, ConcurrentAcquireReleaseIsSafe) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        PooledBuffer b = pool.acquire(64 + 64 * (static_cast<size_t>(t) % 4));
        b.data()[0] = static_cast<u8>(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = pool.stats();
  EXPECT_EQ(st.hits + st.misses, static_cast<size_t>(kThreads) * kIters);
  EXPECT_EQ(st.leased_buffers, 0u);
  EXPECT_LE(st.misses, static_cast<size_t>(kThreads) * 4);  // recycling works
}

}  // namespace
}  // namespace fz
