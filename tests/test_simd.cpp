// SIMD-vs-scalar equivalence (ISSUE PR3): every vectorized kernel in
// core/kernels_simd.cpp must be bit-identical to its scalar reference at
// every dispatch tier the CPU can run, on random AND adversarial inputs —
// all-zeros, all-ones, single-bit patterns, rounding ties, magnitudes that
// straddle the per-tier exact-llround limits, and tile-boundary sizes.
// Also covers the dispatch overrides (FZ_SIMD env var, explicit request)
// and the fused tile pipeline against the unfused stage sequence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/bitshuffle.hpp"
#include "core/encoder.hpp"
#include "core/format.hpp"
#include "core/kernels_simd.hpp"
#include "core/lorenzo.hpp"
#include "core/quantizer.hpp"

namespace fz {
namespace {

/// Every tier this machine can execute, scalar first.  Levels above
/// simd_supported() would silently clamp, so testing them adds nothing.
std::vector<SimdLevel> levels_under_test() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_supported() >= SimdLevel::SSE2) levels.push_back(SimdLevel::SSE2);
  if (simd_supported() >= SimdLevel::AVX2) levels.push_back(SimdLevel::AVX2);
  return levels;
}

// Sizes chosen to straddle every internal boundary: vector widths (2/4/8),
// unit (32), block group (8 blocks), tile (2048 codes / 1024 words).
const size_t kSizes[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33,
                         63, 64, 100, 1000, 2047, 2048, 2049, 5000};

template <typename T>
std::vector<T> adversarial_values(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.below(8)) {
      case 0:  // smooth field values
        v[i] = static_cast<T>(rng.uniform(-1000.0, 1000.0));
        break;
      case 1:  // exact rounding ties at eb = 0.5 (x = k + 0.5)
        v[i] = static_cast<T>(static_cast<double>(rng.below(200)) - 100 + 0.5);
        break;
      case 2:  // large: crosses the SSE2 2^30 exact limit when scaled
        v[i] = static_cast<T>(rng.uniform(-4.0e9, 4.0e9));
        break;
      case 3:  // huge: crosses the AVX2 2^50 exact limit (f64 only ranges)
        v[i] = static_cast<T>(rng.uniform(-4.0e15, 4.0e15));
        break;
      case 4:
        v[i] = T{0};
        break;
      case 5:  // signed zero and tiny magnitudes
        v[i] = static_cast<T>(rng.uniform(-1e-30, 1e-30));
        break;
      case 6:  // near-integer values
        v[i] = static_cast<T>(std::round(rng.uniform(-5000.0, 5000.0)) +
                              rng.uniform(-1e-6, 1e-6));
        break;
      default:
        v[i] = static_cast<T>(rng.normal(0.0, 100.0));
        break;
    }
  }
  return v;
}

TEST(SimdPrequant, F64MatchesScalarReference) {
  for (const double eb : {0.5, 1e-3, 1e-7}) {
    for (const size_t n : kSizes) {
      const auto data = adversarial_values<f64>(n, 17 * n + 1);
      std::vector<i64> want(n);
      prequantize(std::span<const f64>{data}, eb, want);
      for (const SimdLevel level : levels_under_test()) {
        std::vector<i64> got(n, -999);
        prequantize_simd(std::span<const f64>{data}, eb, got, level);
        ASSERT_EQ(want, got) << simd_level_name(level) << " n=" << n
                             << " eb=" << eb;
      }
    }
  }
}

TEST(SimdPrequant, F32MatchesScalarReference) {
  for (const double eb : {0.5, 1e-3, 1e-7}) {
    for (const size_t n : kSizes) {
      const auto data = adversarial_values<f32>(n, 23 * n + 5);
      std::vector<i64> want(n);
      prequantize(std::span<const f32>{data}, eb, want);
      for (const SimdLevel level : levels_under_test()) {
        std::vector<i64> got(n, -999);
        prequantize_simd(std::span<const f32>{data}, eb, got, level);
        ASSERT_EQ(want, got) << simd_level_name(level) << " n=" << n
                             << " eb=" << eb;
      }
    }
  }
}

TEST(SimdPrequant, ExactTiesRoundAwayFromZeroAtEveryLevel) {
  // x = v / (2 eb) lands exactly on k + 0.5: llround rounds away from
  // zero, while hardware round/cvt default to nearest-even — the SIMD
  // emulation must match llround on every one of these.
  std::vector<f64> data64;
  for (int k = -100; k <= 100; ++k)
    data64.push_back((static_cast<double>(k) + 0.5));
  const double eb = 0.5;  // inv == 1, so x == v exactly
  std::vector<f32> data32(data64.begin(), data64.end());
  std::vector<i64> want64(data64.size()), want32(data32.size());
  prequantize(std::span<const f64>{data64}, eb, want64);
  prequantize(std::span<const f32>{data32}, eb, want32);
  for (size_t i = 0; i < data64.size(); ++i) {
    const double v = data64[i];
    ASSERT_EQ(want64[i], std::llround(v));  // sanity: ties away from zero
  }
  for (const SimdLevel level : levels_under_test()) {
    std::vector<i64> got64(data64.size()), got32(data32.size());
    prequantize_simd(std::span<const f64>{data64}, eb, got64, level);
    prequantize_simd(std::span<const f32>{data32}, eb, got32, level);
    EXPECT_EQ(want64, got64) << simd_level_name(level);
    EXPECT_EQ(want32, got32) << simd_level_name(level);
  }
}

TEST(SimdPrequant, F32FastPathMatchesExactPathEverywhere) {
  // The margin test must make the float-multiply fast path agree with the
  // exact double path on *every* input, including values engineered to sit
  // on or near half-integer boundaries and eb values whose f32 reciprocal
  // is subnormal or infinite (forcing the all-exact fallback).
  for (const double eb : {0.5, 1e-3, 0.37, 1e-7, 1e45, 1e-45}) {
    for (const size_t n : kSizes) {
      Rng rng(31 * n + 7);
      std::vector<f32> data(n);
      for (size_t i = 0; i < n; ++i) {
        if (rng.below(3) == 0) {
          // Land near a half-integer boundary after scaling.
          const double k = static_cast<double>(rng.below(100000));
          data[i] = static_cast<f32>((k + 0.5) * 2.0 * eb *
                                     (1.0 + rng.uniform(-1e-7, 1e-7)));
        } else {
          data[i] = static_cast<f32>(rng.uniform(-3e6, 3e6) * 2.0 * eb);
        }
      }
      std::vector<i64> want(n);
      prequantize(std::span<const f32>{data}, eb, want);
      for (const SimdLevel level : levels_under_test()) {
        std::vector<i64> got(n, -999);
        prequantize_f32fast(std::span<const f32>{data}, eb, got, level);
        ASSERT_EQ(want, got) << simd_level_name(level) << " n=" << n
                             << " eb=" << eb;
      }
    }
  }
}

TEST(SimdPrequant, F64FastPathMatchesExactPathEverywhere) {
  // The f64 sibling: narrowing to f32 adds a third rounding, so the margin
  // slope is wider (2^-21), and values whose f32 image is subnormal (but
  // not zero) must fall back to the exact kernel.  Same contract: equal to
  // the exact double path on every input, every level.
  for (const double eb : {0.5, 1e-3, 0.37, 1e-7, 1e45, 1e-45}) {
    for (const size_t n : kSizes) {
      Rng rng(67 * n + 11);
      std::vector<f64> data(n);
      for (size_t i = 0; i < n; ++i) {
        switch (rng.below(4)) {
          case 0: {
            // Land near a half-integer boundary after scaling — inside the
            // narrowing-rounding radius, where the margin must reject.
            const double k = static_cast<double>(rng.below(100000));
            data[i] = (k + 0.5) * 2.0 * eb * (1.0 + rng.uniform(-1e-8, 1e-8));
            break;
          }
          case 1:
            // Magnitudes whose f32 image is subnormal or flushes to zero:
            // the subnormal guard and the narrows-to-zero proof.
            data[i] = rng.uniform(-1.0, 1.0) * 1e-40;
            break;
          default:
            data[i] = rng.uniform(-3e6, 3e6) * 2.0 * eb;
            break;
        }
      }
      std::vector<i64> want(n);
      prequantize(std::span<const f64>{data}, eb, want);
      for (const SimdLevel level : levels_under_test()) {
        std::vector<i64> got(n, -999);
        prequantize_f64fast(std::span<const f64>{data}, eb, got, level);
        ASSERT_EQ(want, got) << simd_level_name(level) << " n=" << n
                             << " eb=" << eb;
      }
    }
  }
}

TEST(SimdPrequant, F64FastPathHandlesNonFiniteAndExtremes) {
  // NaN/inf lanes must route through the exact kernel (unordered compares),
  // and huge magnitudes must fail the range test rather than overflow the
  // f32 convert.
  const std::vector<f64> data = {
      std::numeric_limits<f64>::quiet_NaN(),
      std::numeric_limits<f64>::infinity(),
      -std::numeric_limits<f64>::infinity(),
      1e300,  -1e300, 1e38,   -1e38,  4.2,   -4.2,
      0.0,    -0.0,   5e-324, -5e-324, 1e-45, 2097151.4, -2097152.6};
  const double eb = 0.5;
  std::vector<i64> want(data.size());
  prequantize(std::span<const f64>{data}, eb, want);
  for (const SimdLevel level : levels_under_test()) {
    std::vector<i64> got(data.size(), -999);
    prequantize_f64fast(std::span<const f64>{data}, eb, got, level);
    ASSERT_EQ(want, got) << simd_level_name(level);
  }
}

TEST(SimdEncode, MatchesScalarReferenceIncludingSaturation) {
  for (const size_t n : kSizes) {
    Rng rng(41 * n + 3);
    std::vector<i64> deltas(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.below(4)) {
        case 0:  // in-range
          deltas[i] = static_cast<i64>(rng.below(65535)) - 32767;
          break;
        case 1: {  // clip edges
          static const i64 edges[] = {0,      1,      -1,     32766, 32767,
                                      -32767, 32768,  -32768, 32769, -32769,
                                      65535,  -65535, INT64_MAX, INT64_MIN + 1};
          deltas[i] = edges[rng.below(std::size(edges))];
          break;
        }
        case 2:  // wildly saturating
          deltas[i] = static_cast<i64>(rng.next_u64());
          if (deltas[i] == INT64_MIN) deltas[i] = INT64_MAX;  // ref UB guard
          break;
        default:
          deltas[i] = 0;
          break;
      }
    }
    std::vector<u16> want(n);
    const size_t want_sat = quant_encode_v2(deltas, want);
    for (const SimdLevel level : levels_under_test()) {
      std::vector<u16> got(n, 0xdead);
      const size_t got_sat = quant_encode_v2_simd(deltas, got, level);
      ASSERT_EQ(want, got) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(want_sat, got_sat) << simd_level_name(level) << " n=" << n;
    }
  }
}

// ---- transpose / shuffle ----------------------------------------------------

std::vector<std::vector<u32>> adversarial_units() {
  std::vector<std::vector<u32>> units;
  units.push_back(std::vector<u32>(32, 0u));           // all zeros
  units.push_back(std::vector<u32>(32, 0xffffffffu));  // all ones
  for (int b : {0, 1, 7, 15, 16, 30, 31}) {            // one bit plane set
    units.push_back(std::vector<u32>(32, 1u << b));
    std::vector<u32> one_word(32, 0u);                 // one word set
    one_word[static_cast<size_t>(b)] = 0xffffffffu;
    units.push_back(one_word);
    std::vector<u32> one_bit(32, 0u);                  // a single 1 bit
    one_bit[static_cast<size_t>(b)] = 1u << (31 - b);
    units.push_back(one_bit);
  }
  units.push_back(std::vector<u32>(32, 0xaaaaaaaau));
  units.push_back(std::vector<u32>(32, 0x55555555u));
  Rng rng(99);
  for (int t = 0; t < 64; ++t) {
    std::vector<u32> r(32);
    for (auto& w : r) w = rng.next_u32();
    units.push_back(r);
  }
  return units;
}

TEST(SimdTranspose, UnitMatchesScalarAtEveryStride) {
  for (const auto& unit : adversarial_units()) {
    for (const size_t stride : {size_t{1}, kUnitsPerTile}) {
      std::vector<u32> want(32 * stride, 0xdeadbeefu);
      transpose_unit_simd(unit.data(), want.data(), stride, SimdLevel::Scalar);
      for (const SimdLevel level : levels_under_test()) {
        std::vector<u32> got(32 * stride, 0xdeadbeefu);
        transpose_unit_simd(unit.data(), got.data(), stride, level);
        ASSERT_EQ(want, got) << simd_level_name(level) << " stride=" << stride;
      }
    }
  }
}

TEST(SimdTranspose, UnitMatchesNaiveGather) {
  // Ground truth straight from the ballot semantics: output plane j bit i
  // == input word i bit j.
  const auto units = adversarial_units();
  for (const SimdLevel level : levels_under_test()) {
    for (const auto& unit : units) {
      u32 naive[32] = {};
      for (int j = 0; j < 32; ++j)
        for (int i = 0; i < 32; ++i)
          naive[j] |= ((unit[static_cast<size_t>(i)] >> j) & 1u)
                      << i;
      u32 got[32];
      transpose_unit_simd(unit.data(), got, 1, level);
      for (int j = 0; j < 32; ++j)
        ASSERT_EQ(got[j], naive[j])
            << simd_level_name(level) << " plane " << j;
    }
  }
}

TEST(SimdShuffle, TilesMatchReferenceAndRoundTrip) {
  for (const size_t tiles : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    const size_t words = tiles * kTileWords;
    Rng rng(1000 + tiles);
    std::vector<u32> in(words);
    for (auto& w : in) w = rng.below(4) == 0 ? 0u : rng.next_u32();
    std::vector<u32> want(words);
    bitshuffle_tiles(in, want);
    for (const SimdLevel level : levels_under_test()) {
      std::vector<u32> got(words, 0xdeadbeefu);
      bitshuffle_tiles_simd(in, got, level);
      ASSERT_EQ(want, got) << "shuffle " << simd_level_name(level);
      std::vector<u32> back(words, 0xdeadbeefu);
      bitunshuffle_tiles_simd(got, back, level);
      ASSERT_EQ(in, back) << "roundtrip " << simd_level_name(level);
      // Cross-tier: vector shuffle must invert under the scalar reference.
      std::vector<u32> back_ref(words);
      bitunshuffle_tiles(got, back_ref);
      ASSERT_EQ(in, back_ref) << "cross " << simd_level_name(level);
    }
  }
}

TEST(SimdMark, MatchesScalarReferenceWithTails) {
  for (const size_t nblocks : {size_t{1}, size_t{2}, size_t{7}, size_t{8},
                               size_t{9}, size_t{100}, size_t{255},
                               size_t{256}, size_t{1000}, size_t{4097}}) {
    Rng rng(7 * nblocks);
    std::vector<u32> words(nblocks * kBlockWords, 0u);
    for (auto& w : words)
      if (rng.below(8) == 0) w = rng.next_u32();  // mostly-zero blocks
    std::vector<u8> want_byte(nblocks), want_bit(div_ceil(nblocks, 8));
    mark_blocks(words, std::span<u8>{want_byte}, std::span<u8>{want_bit});
    for (const SimdLevel level : levels_under_test()) {
      std::vector<u8> got_byte(nblocks, 0xee), got_bit(div_ceil(nblocks, 8), 0xee);
      mark_blocks_simd(words, got_byte, got_bit, level);
      ASSERT_EQ(want_byte, got_byte) << simd_level_name(level)
                                     << " nblocks=" << nblocks;
      ASSERT_EQ(want_bit, got_bit) << simd_level_name(level)
                                   << " nblocks=" << nblocks;
    }
  }
}

// ---- fused tile pipeline ----------------------------------------------------

struct RefOut {
  std::vector<u32> shuffled;
  std::vector<u8> byte_flags;
  std::vector<u8> bit_flags;
  size_t saturated = 0;
  i64 anchor = 0;
};

/// The unfused stage sequence (DualQuantStage + BitshuffleMarkStage),
/// reproduced with the scalar building blocks.
template <typename T>
RefOut reference_pipeline(std::span<const T> data, Dims dims, double eb) {
  const size_t n = data.size();
  std::vector<i64> pq(n), delta(n);
  prequantize(data, eb, pq);
  lorenzo_forward(pq, dims, delta);
  RefOut r;
  r.anchor = delta[0];
  delta[0] = 0;
  const size_t padded = round_up(n, kCodesPerTile);
  const size_t words = padded / 2;
  std::vector<u32> codewords(words, 0u);
  const std::span<u16> codes{reinterpret_cast<u16*>(codewords.data()), padded};
  r.saturated = quant_encode_v2(delta, codes.first(n));
  r.shuffled.resize(words);
  bitshuffle_tiles(codewords, r.shuffled);
  r.byte_flags.resize(words / kBlockWords);
  r.bit_flags.resize(div_ceil(r.byte_flags.size(), 8));
  mark_blocks(r.shuffled, std::span<u8>{r.byte_flags},
              std::span<u8>{r.bit_flags});
  return r;
}

template <typename T>
void check_fused(Dims dims, double eb, u64 seed, SimdLevel level,
                 double noise) {
  const size_t n = dims.count();
  Rng rng(seed);
  std::vector<T> data(n);
  for (size_t i = 0; i < n; ++i)
    data[i] = static_cast<T>(100.0 + 40.0 * std::sin(0.013 * double(i)) +
                             rng.uniform(-noise, noise));
  const RefOut want = reference_pipeline(std::span<const T>{data}, dims, eb);

  std::vector<u32> shuffled(want.shuffled.size(), 0xdeadbeefu);
  std::vector<u8> byte_flags(want.byte_flags.size(), 0xee);
  std::vector<u8> bit_flags(want.bit_flags.size(), 0xee);
  std::vector<i64> row(fused_row_scratch_elems(dims), -1);
  std::vector<i64> plane(fused_plane_scratch_elems(dims), -1);
  const FusedTileResult got = fused_quant_shuffle_mark(
      std::span<const T>{data}, dims, eb, false, shuffled, byte_flags,
      bit_flags, row, plane, level);

  ASSERT_EQ(want.shuffled, shuffled)
      << simd_level_name(level) << " dims " << dims.x << "x" << dims.y << "x"
      << dims.z;
  ASSERT_EQ(want.byte_flags, byte_flags) << simd_level_name(level);
  ASSERT_EQ(want.bit_flags, bit_flags) << simd_level_name(level);
  EXPECT_EQ(want.anchor, got.anchor) << simd_level_name(level);
  EXPECT_EQ(want.saturated, got.saturated) << simd_level_name(level);
}

TEST(SimdFused, MatchesUnfusedStagesAllRanksAndLevels) {
  const Dims cases[] = {Dims{1},        Dims{100},      Dims{2047},
                        Dims{2048},     Dims{2049},     Dims{4113},
                        Dims{9000},     Dims{33, 7},    Dims{64, 32},
                        Dims{129, 65},  Dims{1, 33},    Dims{32, 17, 9},
                        Dims{5, 1, 4},  Dims{16, 16, 16}};
  for (const Dims dims : cases) {
    for (const SimdLevel level : levels_under_test()) {
      check_fused<f32>(dims, 1e-3, 7 + dims.count(), level, 0.3);
      check_fused<f64>(dims, 1e-3, 11 + dims.count(), level, 0.3);
    }
  }
}

TEST(SimdFused, MatchesUnfusedUnderHeavySaturation) {
  // Tiny eb + big noise: residuals routinely overflow 15 bits, so the
  // vector clip/saturation-count path is exercised for real.
  for (const SimdLevel level : levels_under_test()) {
    check_fused<f32>(Dims{97, 13}, 1e-6, 77, level, 500.0);
    check_fused<f64>(Dims{11, 9, 5}, 1e-7, 78, level, 500.0);
  }
}

// ---- dispatch overrides -----------------------------------------------------

struct EnvGuard {
  EnvGuard() {
    const char* old = std::getenv("FZ_SIMD");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_)
      setenv("FZ_SIMD", saved_.c_str(), 1);
    else
      unsetenv("FZ_SIMD");
  }
  std::string saved_;
  bool had_ = false;
};

TEST(SimdDispatchTest, EnvVarForcesTierWhenAuto) {
  EnvGuard guard;
  setenv("FZ_SIMD", "scalar", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::Auto), SimdLevel::Scalar);
  setenv("FZ_SIMD", "sse2", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::Auto),
            std::min(SimdLevel::SSE2, simd_supported()));
  setenv("FZ_SIMD", "avx2", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::Auto),
            std::min(SimdLevel::AVX2, simd_supported()));
  setenv("FZ_SIMD", "bogus-tier", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::Auto), simd_supported());
  unsetenv("FZ_SIMD");
  EXPECT_EQ(resolve_simd(SimdDispatch::Auto), simd_supported());
}

TEST(SimdDispatchTest, ExplicitRequestBeatsEnv) {
  EnvGuard guard;
  setenv("FZ_SIMD", "avx2", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::Scalar), SimdLevel::Scalar);
  setenv("FZ_SIMD", "scalar", 1);
  EXPECT_EQ(resolve_simd(SimdDispatch::SSE2),
            std::min(SimdLevel::SSE2, simd_supported()));
}

TEST(SimdDispatchTest, RequestsClampDownNeverUp) {
  const SimdLevel hw = simd_supported();
  EXPECT_LE(resolve_simd(SimdDispatch::AVX2), hw);
  EXPECT_LE(resolve_simd(SimdDispatch::SSE2), hw);
  EXPECT_EQ(resolve_simd(SimdDispatch::Scalar), SimdLevel::Scalar);
}

TEST(SimdDispatchTest, ParseLevelAcceptsExactNamesOnly) {
  SimdLevel out = SimdLevel::AVX2;
  EXPECT_TRUE(simd_parse_level("scalar", out));
  EXPECT_EQ(out, SimdLevel::Scalar);
  EXPECT_TRUE(simd_parse_level("sse2", out));
  EXPECT_EQ(out, SimdLevel::SSE2);
  EXPECT_TRUE(simd_parse_level("avx2", out));
  EXPECT_EQ(out, SimdLevel::AVX2);
  EXPECT_FALSE(simd_parse_level("AVX2", out));
  EXPECT_FALSE(simd_parse_level("", out));
  EXPECT_EQ(out, SimdLevel::AVX2);  // untouched on failure
}

}  // namespace
}  // namespace fz
