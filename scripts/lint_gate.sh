#!/usr/bin/env bash
# fzlint gate: build the in-tree static analyzer and run it over the source
# tree.  Exits nonzero on any finding, so it can stand alone as a CI stage
# (scripts/check.sh calls it as the always-on `lint-static` stage).
#
# The machine-readable report is archived next to the build so CI can
# upload it; fzlint's own text output is the human summary (one line per
# rule plus the total/suppressed tally).
#
# Usage: scripts/lint_gate.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
jobs=$(nproc 2>/dev/null || echo 4)

if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
  cmake --preset default > /dev/null
fi
cmake --build "${build_dir}" -j "${jobs}" --target fzlint > /dev/null

report="${build_dir}/fzlint_report.json"
"${build_dir}/tools/fzlint/fzlint" --root . --json "${report}"
echo "lint-static: report archived at ${report}"
