#!/usr/bin/env bash
# CI-style gate: every analysis pass must come back green.
#
#   1. default        — RelWithDebInfo build, full test suite (includes the
#                       fzcheck simulator-hazard tests: any SanitizerReport
#                       diagnostic fails test_sanitizer)
#   1b. service smoke — fzd selftest (job taxonomy, byte-identity vs a
#                       direct Codec, policy/params rejection) plus a short
#                       concurrent soak against the admission queue; re-run
#                       under the tsan preset in full mode
#   2. bench smoke    — scripts/bench_smoke.sh guards the SIMD/fused and
#                       tile-parallel throughput against the checked-in
#                       BENCH_pr5.json baseline (tolerance via
#                       FZ_BENCH_TOLERANCE), including the fused-parallel
#                       >= fused-serial gate, and the PR6 random-access
#                       reader gate (byte-identical slices, hot-cache hit
#                       rate, prefetch effectiveness) via BENCH_pr6.json
#   3. trace smoke    — runs fz_cli under FZ_TRACE and --trace, plus a
#                       small bench/regress run under FZ_TRACE; in each
#                       case scripts/validate_trace.py checks the Chrome
#                       JSON parses, spans nest per thread, and the
#                       expected stage/chunk spans were recorded — the
#                       regress trace must contain the per-strip
#                       "fused-strip" spans of the tile-parallel pass, and
#                       the cli selftest traces must contain the reader's
#                       "reader-read" spans plus one pool-worker
#                       "chunk-fetch" span per container chunk
#   4. lint-static    — tools/fzlint over src/tools/examples/tests/bench:
#                       layering DAG, lock/allocation discipline in hot-path
#                       files, on-disk-layout audit, hygiene bans.  Built
#                       from this repo, so it ALWAYS runs — including under
#                       --fast; scripts/lint_gate.sh is the standalone
#                       wrapper and archives build/fzlint_report.json
#   5. asan-ubsan     — full suite under AddressSanitizer + UBSanitizer,
#                       plus the trace smoke re-run against the asan build
#                       (the env-sink exit flush must be sanitizer-clean)
#                       and an explicit re-run of the fused-parallel
#                       schedule-independence suite (thread-scaling
#                       byte-identity under the sanitizers)
#   6. tsan           — pool/codec/chunked/threading tests under
#                       ThreadSanitizer (host-side concurrency)
#   7. lint           — clang-tidy over src/ (.clang-tidy profile,
#                       WarningsAsErrors: any warning fails); skipped with a
#                       notice when clang-tidy is not installed, unless
#                       FZ_REQUIRE_LINT=1, which turns the skip into a
#                       failure (docs/SANITIZER.md has the install note)
#
# Any sanitizer finding fails the suite (-fno-sanitize-recover=all aborts
# the offending test; TSan exits nonzero on a report; clang-tidy exits
# nonzero on any warning-as-error; fzlint exits nonzero on any finding).
#
# Usage: scripts/check.sh [--fast]
#   --fast   default configuration + lint-static only (skip sanitizer
#            builds and clang-tidy)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "==== configure/build/test: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
}

trace_smoke() {
  # $1: fz_cli binary.  The selftest covers single-stream, f64 and chunked
  # paths, so the trace exercises stage, chunk and per-worker spans.
  local cli="$1"
  local tmp
  tmp=$(mktemp -d)
  FZ_TRACE="${tmp}/env.json" "${cli}" selftest > /dev/null
  "${cli}" --trace "${tmp}/cli.json" selftest > /dev/null 2> "${tmp}/summary.txt"
  python3 scripts/validate_trace.py "${tmp}/env.json" \
    --expect compress decompress chunk-compress prefix-sum-encode \
    reader-read chunk-fetch \
    --min-count reader-read=2 chunk-fetch=4
  python3 scripts/validate_trace.py "${tmp}/cli.json" \
    --expect compress compress-chunked chunk-compress chunk-decompress \
    reader-read chunk-fetch \
    --min-count reader-read=2 chunk-fetch=4
  grep -q "spans by name" "${tmp}/summary.txt" ||
    { echo "trace smoke: --trace printed no summary" >&2; exit 1; }
  rm -rf "${tmp}"
}

service_smoke() {
  # $1: fzd binary.  selftest covers the full job taxonomy (roundtrip
  # byte-identity vs a direct Codec, policy/params rejection, stats text);
  # the short soak hammers the admission queue from concurrent clients and
  # fails on any response mismatch or dropped worker exception.
  local fzd="$1"
  echo "---- fzd selftest (${fzd}) ----"
  "${fzd}" selftest > /dev/null
  echo "---- fzd soak: 600 mixed requests / 6 clients ----"
  "${fzd}" soak --requests 600 --clients 6 --queue 16 > /dev/null
}

run_preset default

echo "==== service smoke: fzd selftest + concurrent soak ===="
service_smoke build/src/fzd

echo "==== bench smoke: SIMD + fused-pipeline + random-access guards ===="
scripts/bench_smoke.sh build/bench/regress build/bench/random_access

echo "==== trace smoke: telemetry export validates ===="
trace_smoke build/examples/fz_cli
# A traced bench run: every env-sink codec in regress records into one
# trace, covering the unfused, fused-serial and fused-parallel compression
# graphs — including the per-strip spans of the tile-parallel pass.
trace_tmp=$(mktemp -d)
FZ_TRACE="${trace_tmp}/regress.json" build/bench/regress \
  --scale 0.05 --iters 1 --out "${trace_tmp}/bench.json" > /dev/null
python3 scripts/validate_trace.py "${trace_tmp}/regress.json" \
  --expect compress dual-quant fused-quant-shuffle-mark fused-strip \
  prefix-sum-encode
rm -rf "${trace_tmp}"

echo "==== lint-static: fzlint (layering / lock discipline / layout / hygiene) ===="
scripts/lint_gate.sh build

if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan

  echo "==== trace smoke (asan-ubsan) ===="
  trace_smoke build-asan/examples/fz_cli

  echo "==== fused-parallel schedule independence (asan-ubsan) ===="
  # The thread-scaling byte-identity suite again, explicitly, under the
  # sanitizers: worker counts {1,2,3,8} x dtypes x SIMD tiers must stay
  # byte-identical and fault-free.
  build-asan/tests/test_fused_parallel
  build-asan/tests/test_threading \
    --gtest_filter='Threading.SharedSinkAcrossFusedStripWorkers'

  run_preset tsan

  echo "==== service smoke (tsan): fzd selftest + concurrent soak ===="
  service_smoke build-tsan/src/fzd

  echo "==== lint: clang-tidy over src/ ===="
  if command -v clang-tidy > /dev/null 2>&1; then
    cmake --build build --target lint
  elif [[ "${FZ_REQUIRE_LINT:-0}" == "1" ]]; then
    echo "lint: clang-tidy not found on PATH and FZ_REQUIRE_LINT=1 —" \
      "failing (docs/SANITIZER.md has the install note)" >&2
    exit 1
  else
    echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy to enable, or set FZ_REQUIRE_LINT=1 to make this fatal)"
  fi
fi

echo "check.sh: all configurations green"
