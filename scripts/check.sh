#!/usr/bin/env bash
# CI-style gate: build the default and the asan-ubsan configurations and
# run the full test suite under both.  Any sanitizer finding fails the
# suite (-fno-sanitize-recover=all aborts the offending test).
#
# Usage: scripts/check.sh [--fast]
#   --fast   default configuration only (skip the sanitizer build)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "==== configure/build/test: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset default

if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan
fi

echo "check.sh: all configurations green"
