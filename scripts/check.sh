#!/usr/bin/env bash
# CI-style gate: every analysis pass must come back green.
#
#   1. default        — RelWithDebInfo build, full test suite (includes the
#                       fzcheck simulator-hazard tests: any SanitizerReport
#                       diagnostic fails test_sanitizer)
#   2. bench smoke    — scripts/bench_smoke.sh guards the PR3 SIMD/fused
#                       throughput against the checked-in BENCH_pr3.json
#                       baseline (tolerance via FZ_BENCH_TOLERANCE)
#   3. asan-ubsan     — full suite under AddressSanitizer + UBSanitizer
#   4. tsan           — pool/codec/chunked/threading tests under
#                       ThreadSanitizer (host-side concurrency)
#   5. lint           — clang-tidy over src/ (.clang-tidy profile,
#                       WarningsAsErrors: any warning fails); skipped with a
#                       notice when clang-tidy is not installed
#
# Any sanitizer finding fails the suite (-fno-sanitize-recover=all aborts
# the offending test; TSan exits nonzero on a report; clang-tidy exits
# nonzero on any warning-as-error).
#
# Usage: scripts/check.sh [--fast]
#   --fast   default configuration only (skip sanitizer builds and lint)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "==== configure/build/test: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
}

run_preset default

echo "==== bench smoke: SIMD + fused-pipeline throughput guard ===="
scripts/bench_smoke.sh build/bench/regress

if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan
  run_preset tsan

  echo "==== lint: clang-tidy over src/ ===="
  if command -v clang-tidy > /dev/null 2>&1; then
    cmake --build build --target lint
  else
    echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  fi
fi

echo "check.sh: all configurations green"
