#!/usr/bin/env python3
"""Validate an FZ Chrome trace (FZ_TRACE / fz_cli --trace output).

Checks, in order:
  1. the file parses as JSON and has a non-empty "traceEvents" array;
  2. every complete ("ph":"X") event carries name/ts/dur/pid/tid;
  3. per (pid, tid) timeline, span intervals strictly nest: a span is either
     fully contained in the enclosing open span or disjoint from it — a
     partial overlap means a recorder published a torn or misattributed
     event;
  4. every --expect NAME appears at least once;
  5. every --min-count NAME=N span name appears at least N times (used for
     fan-out spans like the reader's per-chunk "chunk-fetch", where a single
     stray event would hide a broken pool dispatch).

Exit code 0 on success; 1 with a diagnostic on the first violation.
Usage: validate_trace.py TRACE.json [--expect NAME ...] [--min-count NAME=N ...]
"""
import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--expect", nargs="*", default=[],
                    help="span names that must appear at least once")
    ap.add_argument("--min-count", nargs="*", default=[], metavar="NAME=N",
                    help="span names that must appear at least N times")
    args = ap.parse_args()

    min_counts = {}
    for spec in args.min_count:
        name, sep, count = spec.rpartition("=")
        if not sep or not count.isdigit():
            fail(f"bad --min-count spec {spec!r} (want NAME=N)")
        min_counts[name] = int(count)

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "C"):
            fail(f"event {i}: unexpected phase {ph!r}")
        for key in ("name", "ts", "pid"):
            if key not in ev:
                fail(f"event {i}: missing {key!r}")
        if ph == "X":
            if "dur" not in ev or "tid" not in ev:
                fail(f"event {i}: complete event missing dur/tid")
            if ev["dur"] < 0:
                fail(f"event {i} ({ev['name']}): negative duration")
            spans.append(ev)

    if not spans:
        fail("no complete (ph=X) span events")

    # Nesting: walk each thread's spans in start order with an open-span
    # stack; every span must close before anything it contains re-opens.
    by_tid = defaultdict(list)
    for ev in spans:
        by_tid[(ev["pid"], ev["tid"])].append(ev)
    for (pid, tid), timeline in sorted(by_tid.items()):
        timeline.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        stack = []  # (name, start, end) of currently open spans
        for ev in timeline:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][2]:
                stack.pop()
            if stack and end > stack[-1][2]:
                fail(f"tid {pid}/{tid}: span {ev['name']!r} "
                     f"[{start}, {end}] partially overlaps open span "
                     f"{stack[-1][0]!r} [{stack[-1][1]}, {stack[-1][2]}]")
            stack.append((ev["name"], start, end))

    names = {ev["name"] for ev in spans}
    missing = [n for n in args.expect if n not in names]
    if missing:
        fail(f"expected span names never recorded: {missing} "
             f"(saw: {sorted(names)})")

    counts = defaultdict(int)
    for ev in spans:
        counts[ev["name"]] += 1
    for name, want in sorted(min_counts.items()):
        if counts[name] < want:
            fail(f"span {name!r} recorded {counts[name]} time(s), "
                 f"need >= {want} (saw: {sorted(names)})")

    print(f"validate_trace: OK: {len(spans)} spans on {len(by_tid)} "
          f"thread timeline(s), {len(names)} distinct names")


if __name__ == "__main__":
    main()
