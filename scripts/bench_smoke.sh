#!/usr/bin/env bash
# Throughput smoke guard for the SIMD + fused-pipeline work (PR3) and the
# tile-parallel fused pipeline (PR5): re-runs bench/regress at the
# checked-in baseline's scale and fails if
#
#   * any compressed stream stops being byte-identical across the
#     {unfused, fused-serial, fused-parallel} x {scalar, simd} configs
#     (correctness, zero tolerance),
#   * the best fused-parallel-simd speedup over unfused-scalar drops below
#     1.5x (the PR3 acceptance floor, machine-independent),
#   * fused-parallel at max workers falls below fused-serial on any tier-1
#     dataset (ratio < 0.95, small noise allowance — the strip body must
#     never be a regression), or
#   * any per-stage GB/s regresses more than FZ_BENCH_TOLERANCE (default
#     0.50 = 50%) below the checked-in BENCH_pr5.json baseline.  (0.20,
#     0.25 and 0.40 all proved flaky on the shared single-core reference
#     box: its effective clock is bimodal, sagging to ~half speed right
#     after a heavy build — exactly when check.sh reaches this gate.  The
#     baseline is per-stage minima over eleven runs, and the within-run
#     ratio gates above carry the real regression signal, so the
#     per-stage floor only needs to catch catastrophic slowdowns.)
#
# Wall clocks on shared machines are noisy; raise the tolerance via
#   FZ_BENCH_TOLERANCE=0.5 scripts/bench_smoke.sh
# or regenerate the baseline on this machine with build/bench/regress.
# The checked-in baseline's stage numbers are per-stage minima over three
# back-to-back runs, so the floor already absorbs run-to-run jitter.
#
# PR6 adds a second gate on bench/random_access vs BENCH_pr6.json:
#
#   * every random slice served by fz::Reader must stay byte-identical to
#     the full-stream decompress (zero tolerance),
#   * the hot-cache re-read hit rate must stay 1.0 and the sequential sweep
#     must land prefetch hits (the reader's cache/prefetcher must not
#     silently stop working),
#   * hot-cache re-reads must beat cold reads by >= 2x (hot is a memcpy
#     out of the cache; losing that gap means decodes are being repeated).
#
# PR8 adds a third gate on the gap-array Huffman decode rows regress now
# emits (BENCH_pr8.json):
#
#   * every decode path (any worker count, table-driven or bit-serial, gap
#     or legacy stream) must keep returning the exact encoded symbols
#     (zero tolerance),
#   * segment-parallel decode at max workers must not lose to one worker on
#     any tier-1 dataset (ratio < 0.95, same noise allowance as the fused
#     gate — on multi-core boxes this is where the gap array pays off; on a
#     single-core box the two configs run the same code, so the bar drops
#     to 0.85, a pure task-crew-overhead guard against the bimodal clock),
#   * the table-driven fast path must stay >= 2x the bit-serial walk at one
#     worker on every dataset (the PR8 acceptance floor; the batched
#     peek/consume window is what keeps this true even for near-constant
#     code distributions).
#
# PR9 adds a fourth gate on bench/service_throughput vs BENCH_pr9.json
# (all machine-independent, no wall-clock floor):
#
#   * every compress job streamed through fz::Service must return the
#     byte-identical stream a direct Codec produces (zero tolerance),
#   * the one-worker service must keep >= 0.5x the direct codec's
#     throughput (the harness overhead guard — queueing + wakeup must stay
#     small next to the compression itself),
#   * the queue-saturation segment must record QueueFull rejections
#     (backpressure must stay explicit, never blocking or unbounded), and
#   * the worker pool must complete with zero dropped exceptions and zero
#     failed jobs.
#
# PR10 adds a fifth gate on the fused-decompress rows regress now emits
# (BENCH_pr10.json):
#
#   * every restored field must stay byte-identical between the fused and
#     the classic staged decompress graph, and the chunked z-carry scan
#     must return the exact serial bytes at every worker count (both zero
#     tolerance),
#   * the fused decompress pass must not lose to the classic graph on any
#     tier-1 dataset (ratio < 0.95 on multi-core; 0.85 on a single-core box
#     where both graphs run serially and the comparison only carries clock
#     noise — same bimodal-clock allowance as the PR8 gate),
#   * the chunked z-carry scan at max workers must keep >= 0.95x the
#     one-worker throughput on multi-core boxes (>= 0.85x single-core,
#     where the two rows run the identical serial code path).
#
# Usage: scripts/bench_smoke.sh [path/to/regress-binary] [path/to/random_access-binary] [path/to/service_throughput-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

regress_bin="${1:-build/bench/regress}"
reader_bin="${2:-build/bench/random_access}"
service_bin="${3:-build/bench/service_throughput}"
baseline="BENCH_pr5.json"
reader_baseline="BENCH_pr6.json"
huff_baseline="BENCH_pr8.json"
service_baseline="BENCH_pr9.json"
tolerance="${FZ_BENCH_TOLERANCE:-0.50}"

if [[ ! -x "${regress_bin}" ]]; then
  echo "bench_smoke: ${regress_bin} not built (cmake --build build --target regress)" >&2
  exit 1
fi
if [[ ! -x "${reader_bin}" ]]; then
  echo "bench_smoke: ${reader_bin} not built (cmake --build build --target random_access)" >&2
  exit 1
fi
if [[ ! -x "${service_bin}" ]]; then
  echo "bench_smoke: ${service_bin} not built (cmake --build build --target service_throughput)" >&2
  exit 1
fi
if [[ ! -f "${baseline}" || ! -f "${reader_baseline}" || ! -f "${huff_baseline}" || ! -f "${service_baseline}" ]]; then
  echo "bench_smoke: baseline ${baseline}, ${reader_baseline}, ${huff_baseline} or ${service_baseline} missing" >&2
  exit 1
fi

fresh="$(mktemp /tmp/BENCH_smoke.XXXXXX.json)"
huff_fresh="$(mktemp /tmp/BENCH_huff_smoke.XXXXXX.json)"
pr10_fresh="$(mktemp /tmp/BENCH_pr10_smoke.XXXXXX.json)"
trap 'rm -f "${fresh}" "${huff_fresh}" "${pr10_fresh}"' EXIT

scale=$(python3 -c "import json; print(json.load(open('${baseline}'))['scale'])")
iters=$(python3 -c "import json; print(int(json.load(open('${baseline}'))['iters']))")
"${regress_bin}" --scale "${scale}" --iters "${iters}" --out "${fresh}" \
  --huff-out "${huff_fresh}" --pr10-out "${pr10_fresh}" > /dev/null

python3 - "${baseline}" "${fresh}" "${tolerance}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(baseline_path))
new = json.load(open(fresh_path))
failures = []

if not new["streams_identical"]:
    failures.append("compressed streams are no longer byte-identical across configs")

best_speedup = max(new["speedups"].values())
if best_speedup < 1.5:
    failures.append(f"best fused-parallel speedup {best_speedup:.2f}x < 1.5x floor")

# PR5 gate: the tile-parallel fused pass at max workers must never lose to
# the serial streaming pass it replaced, on any tier-1 dataset.
for dataset, ratio in new["parallel_vs_serial"].items():
    if ratio < 0.95:
        failures.append(
            f"fused-parallel {ratio:.2f}x fused-serial on {dataset} "
            f"(must be >= 0.95)")

base_stages = {(s["stage"], s["level"]): s["gbps"] for s in base["stages"]}
for s in new["stages"]:
    key = (s["stage"], s["level"])
    if key not in base_stages:
        continue  # new stage with no baseline yet
    floor = base_stages[key] * (1.0 - tol)
    if s["gbps"] < floor:
        failures.append(
            f"{s['stage']}/{s['level']}: {s['gbps']:.3f} GB/s < "
            f"{floor:.3f} (baseline {base_stages[key]:.3f}, tol {tol:.0%})")

if failures:
    print("bench_smoke: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
best_ratio = max(new["parallel_vs_serial"].values())
print(f"bench_smoke: OK (best fused-parallel speedup {best_speedup:.2f}x, "
      f"parallel/serial up to {best_ratio:.2f}x, "
      f"{len(new['stages'])} stage measurements within {tol:.0%} of baseline)")
EOF

# ---- PR8: gap-array Huffman decode gate -------------------------------------
python3 - "${huff_fresh}" <<'EOF'
import json, sys

new = json.load(open(sys.argv[1]))
failures = []

if not new["huffman_identical"]:
    failures.append("Huffman decode no longer returns the encoded symbols on every path")

# On a single-core box max-workers and one-worker run the same code path;
# the comparison only carries scheduling overhead + clock noise, so the bar
# drops from "must not lose" to "must not collapse".
floor = 0.95 if new["max_threads"] > 1 else 0.85
for dataset, ratio in new["huffman_parallel_vs_serial"].items():
    if ratio < floor:
        failures.append(
            f"segment-parallel decode {ratio:.2f}x one-worker on {dataset} "
            f"(must be >= {floor})")

for dataset, speedup in new["huffman_table_speedup"].items():
    if speedup < 2.0:
        failures.append(
            f"table-driven decode only {speedup:.2f}x bit-serial on {dataset} "
            f"(must be >= 2x)")

if failures:
    print("bench_smoke[huffman]: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
spd = new["huffman_table_speedup"]
ratios = new["huffman_parallel_vs_serial"]
print(f"bench_smoke[huffman]: OK (symbols identical on every path, "
      f"table/bit-serial {min(spd.values()):.2f}-{max(spd.values()):.2f}x, "
      f"parallel/serial up to {max(ratios.values()):.2f}x)")
EOF

# ---- PR10: fused decompress + z-carry scan gate -----------------------------
python3 - "${pr10_fresh}" <<'EOF'
import json, sys

new = json.load(open(sys.argv[1]))
failures = []

if not new["decompress_identical"]:
    failures.append("fused decompress no longer restores the classic graph's bytes")
if not new["zscan_identical"]:
    failures.append("chunked z-carry scan no longer matches the serial scan bytes")

# Single-core boxes run both decompress graphs (and both z-scan rows)
# serially, so the ratio only carries clock noise; same allowance as the
# PR8 gate.
floor = 0.95 if new["max_threads"] > 1 else 0.85
for row in new["fused_decompress"]:
    ratio = row["fused_gbps"] / row["unfused_gbps"]
    if ratio < floor:
        failures.append(
            f"fused decompress {ratio:.2f}x classic on {row['dataset']} "
            f"(must be >= {floor})")

# zscan_scaling rows are ordered: first = one worker, last = max workers.
z = new["zscan_scaling"]
z_ratio = z[-1]["gbps"] / z[0]["gbps"]
if z_ratio < floor:
    failures.append(
        f"chunked z-carry scan at max workers {z_ratio:.2f}x one worker "
        f"(must be >= {floor})")

if failures:
    print("bench_smoke[fused-decompress]: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
ratios = [r["fused_gbps"] / r["unfused_gbps"] for r in new["fused_decompress"]]
print(f"bench_smoke[fused-decompress]: OK (bytes identical on both paths, "
      f"fused/classic {min(ratios):.2f}-{max(ratios):.2f}x, "
      f"z-scan max-workers {z_ratio:.2f}x one worker)")
EOF

# ---- PR6: random-access reader gate -----------------------------------------
reader_fresh="$(mktemp /tmp/BENCH_reader_smoke.XXXXXX.json)"
trap 'rm -f "${fresh}" "${huff_fresh}" "${pr10_fresh}" "${reader_fresh}"' EXIT

reader_scale=$(python3 -c "import json; print(json.load(open('${reader_baseline}'))['scale'])")
reader_iters=$(python3 -c "import json; print(int(json.load(open('${reader_baseline}'))['iters']))")
"${reader_bin}" --scale "${reader_scale}" --iters "${reader_iters}" \
  --out "${reader_fresh}" > /dev/null

python3 - "${reader_fresh}" <<'EOF'
import json, sys

new = json.load(open(sys.argv[1]))
failures = []

if not new["byte_identical"]:
    failures.append("Reader slices are no longer byte-identical to full decompress")
if new["hot_hit_rate"] < 1.0:
    failures.append(f"hot-cache hit rate {new['hot_hit_rate']:.2f} < 1.0")
if new["prefetch_issued"] == 0 or new["prefetch_hits"] == 0:
    failures.append(
        f"sequential sweep prefetch inert (issued {new['prefetch_issued']}, "
        f"hits {new['prefetch_hits']})")
hot_over_cold = new["hot_slice_gbps"] / max(new["cold_slice_gbps"], 1e-12)
if hot_over_cold < 2.0:
    failures.append(
        f"hot-cache re-read only {hot_over_cold:.2f}x cold (must be >= 2x)")

if failures:
    print("bench_smoke[reader]: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"bench_smoke[reader]: OK (slices byte-identical, hot {hot_over_cold:.1f}x cold, "
      f"hit rate {new['hot_hit_rate']:.2f}, "
      f"prefetch {new['prefetch_hits']}/{new['prefetch_issued']} hits)")
EOF

# ---- PR9: service harness gate ----------------------------------------------
service_fresh="$(mktemp /tmp/BENCH_service_smoke.XXXXXX.json)"
trap 'rm -f "${fresh}" "${huff_fresh}" "${pr10_fresh}" "${reader_fresh}" "${service_fresh}"' EXIT

service_scale=$(python3 -c "import json; print(json.load(open('${service_baseline}'))['scale'])")
service_iters=$(python3 -c "import json; print(int(json.load(open('${service_baseline}'))['iters']))")
"${service_bin}" --scale "${service_scale}" --iters "${service_iters}" \
  --out "${service_fresh}" > /dev/null

python3 - "${service_fresh}" <<'EOF'
import json, sys

new = json.load(open(sys.argv[1]))
failures = []

if not new["byte_identical"]:
    failures.append("service responses are no longer byte-identical to a direct Codec")
if new["service_1w_vs_direct"] < 0.5:
    failures.append(
        f"one-worker service only {new['service_1w_vs_direct']:.2f}x direct "
        f"codec (harness overhead; must be >= 0.5x)")
if new["queue_full_rejects"] == 0:
    failures.append("saturation produced no QueueFull rejections (backpressure inert)")
if new["dropped_exceptions"] != 0:
    failures.append(f"worker pool dropped {new['dropped_exceptions']} exceptions")
if new["failed_jobs"] != 0:
    failures.append(f"{new['failed_jobs']} service jobs completed with a failure status")

if failures:
    print("bench_smoke[service]: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"bench_smoke[service]: OK (byte-identical, 1-worker {new['service_1w_vs_direct']:.2f}x "
      f"direct, pool scaling {new['pool_scaling']:.2f}x, "
      f"p50/p99 {new['latency_p50_us']:.0f}/{new['latency_p99_us']:.0f} us, "
      f"{new['queue_full_rejects']} backpressure rejects)")
EOF
